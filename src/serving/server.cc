#include "serving/server.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>

#include "core/macros.h"
#include "telemetry/clock.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/tracer.h"

namespace lce::serving {
namespace {

telemetry::Metric* Counter(const char* name) {
  return telemetry::MetricsRegistry::Global().Counter(name);
}

telemetry::Metric* SubmittedTotal() {
  static telemetry::Metric* m = Counter("serving.submitted_total");
  return m;
}
telemetry::Metric* ShedTotal() {
  static telemetry::Metric* m = Counter("serving.shed_total");
  return m;
}
telemetry::Metric* AdmittedTotal() {
  static telemetry::Metric* m = Counter("serving.admitted_total");
  return m;
}
telemetry::Metric* CompletedOkTotal() {
  static telemetry::Metric* m = Counter("serving.completed_ok_total");
  return m;
}
telemetry::Metric* ExpiredInQueueTotal() {
  static telemetry::Metric* m = Counter("serving.expired_in_queue_total");
  return m;
}
telemetry::Metric* DeadlineExceededTotal() {
  static telemetry::Metric* m = Counter("serving.deadline_exceeded_total");
  return m;
}
telemetry::Metric* CancelledTotal() {
  static telemetry::Metric* m = Counter("serving.cancelled_total");
  return m;
}
telemetry::Metric* FailedTotal() {
  static telemetry::Metric* m = Counter("serving.failed_total");
  return m;
}
telemetry::Metric* StatsExportsTotal() {
  static telemetry::Metric* m = Counter("serving.stats_exports_total");
  return m;
}
telemetry::Metric* BatchesExecutedTotal() {
  static telemetry::Metric* m = Counter("serving.batches_executed_total");
  return m;
}
// Shaped submits refused because their resolution could not be bucketed
// (inadmissible, over the bucket cap, or lazy compile disabled).
telemetry::Metric* ShapeRejectedTotal() {
  static telemetry::Metric* m = Counter("serving.shape_rejected_total");
  return m;
}
telemetry::Metric* QueueDepth() {
  static telemetry::Metric* m =
      telemetry::MetricsRegistry::Global().Gauge("serving.queue_depth");
  return m;
}
telemetry::Metric* QueueDepthPeak() {
  static telemetry::Metric* m =
      telemetry::MetricsRegistry::Global().Gauge("serving.queue_depth_peak");
  return m;
}

// The serving latency distributions (docs/OBSERVABILITY.md). Process-wide,
// like every registry metric: servers in one process share them, and tests
// reconcile count *deltas* against per-server counters.
//   queue_wait -- enqueue to executor pickup, recorded for every dequeued
//                 request (including ones that then expire or are shed);
//   execute    -- fill + Invoke, recorded iff the request was admitted;
//   e2e        -- enqueue to terminal state, recorded iff admitted, so its
//                 count always equals execute's and the admitted counter.
telemetry::Histogram* QueueWaitHist() {
  static telemetry::Histogram* h =
      telemetry::MetricsRegistry::Global().Histogram("serving.queue_wait_ns");
  return h;
}
telemetry::Histogram* ExecuteHist() {
  static telemetry::Histogram* h =
      telemetry::MetricsRegistry::Global().Histogram("serving.execute_ns");
  return h;
}
telemetry::Histogram* E2eHist() {
  static telemetry::Histogram* h =
      telemetry::MetricsRegistry::Global().Histogram("serving.e2e_ns");
  return h;
}
// Lanes per executed batch. Recorded once per batch Invoke, so its count
// tracks serving.batches_executed_total and its mean is the achieved
// occupancy (1.0 == batching never found a batchmate).
telemetry::Histogram* BatchOccupancyHist() {
  static telemetry::Histogram* h =
      telemetry::MetricsRegistry::Global().Histogram("serving.batch_occupancy");
  return h;
}
// Per-bucket occupancy: lanes per executed batch, split by the bucket the
// batch ran in, so mixed-resolution traffic shows which resolutions batch
// well ("serving.bucket.224.occupancy" etc.). Registry-owned, looked up by
// name per batch (a map lookup; batches amortize it over their lanes).
telemetry::Histogram* BucketOccupancyHist(int shape_hw) {
  return telemetry::MetricsRegistry::Global().Histogram(
      "serving.bucket." + std::to_string(shape_hw) + ".occupancy");
}

}  // namespace

std::string ServerStats::ToJson() const {
  std::string out = "{\n";
  out += "  \"submitted\": " + std::to_string(submitted) + ",\n";
  out += "  \"shed\": " + std::to_string(shed) + ",\n";
  out += "  \"expired_in_queue\": " + std::to_string(expired_in_queue) + ",\n";
  out +=
      "  \"cancelled_in_queue\": " + std::to_string(cancelled_in_queue) + ",\n";
  out += "  \"admitted\": " + std::to_string(admitted) + ",\n";
  out += "  \"completed_ok\": " + std::to_string(completed_ok) + ",\n";
  out += "  \"deadline_exceeded\": " + std::to_string(deadline_exceeded) +
         ",\n";
  out += "  \"cancelled\": " + std::to_string(cancelled) + ",\n";
  out += "  \"failed\": " + std::to_string(failed) + ",\n";
  out += "  \"quarantined\": " + std::to_string(quarantined) + ",\n";
  out += "  \"batches_executed\": " + std::to_string(batches_executed) + ",\n";
  out += "  \"shape_rejected\": " + std::to_string(shape_rejected) + ",\n";
  out += "  \"shape_buckets\": " + std::to_string(shape_buckets) + ",\n";
  out += "  \"queue_depth\": " + std::to_string(queue_depth) + ",\n";
  out += "  \"queue_depth_peak\": " + std::to_string(queue_depth_peak) + ",\n";
  out += "  \"next_request_id\": " + std::to_string(next_request_id) + ",\n";
  out += "  \"queue_wait_ns\": " + queue_wait.ToJson() + ",\n";
  out += "  \"execute_ns\": " + execute.ToJson() + ",\n";
  out += "  \"e2e_ns\": " + e2e.ToJson() + ",\n";
  out += "  \"batch_occupancy\": " + batch_occupancy.ToJson() + "\n";
  out += "}\n";
  return out;
}

Status Request::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return done_; });
  return status_;
}

bool Request::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

Status Request::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

void Request::Complete(Status status) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (done_) return;
    status_ = std::move(status);
    done_ = true;
  }
  cv_.notify_all();
}

std::vector<std::shared_ptr<const CompiledModel>> Server::BuildModelSet(
    const std::shared_ptr<const CompiledModel>& model,
    const ServerOptions& options) {
  // The startup bucket set: the base resolution, buckets already on the
  // model's registry (CompileOptions::input_resolutions), and the server's
  // own configured resolutions.
  std::vector<int> resolutions = model->ShapeBucketResolutions();
  resolutions.insert(resolutions.end(), options.input_resolutions.begin(),
                     options.input_resolutions.end());
  std::sort(resolutions.begin(), resolutions.end());
  resolutions.erase(std::unique(resolutions.begin(), resolutions.end()),
                    resolutions.end());

  std::vector<std::shared_ptr<const CompiledModel>> models;
  for (const int hw : resolutions) {
    std::shared_ptr<const CompiledModel> bucket;
    Status st = CompiledModel::GetOrCompileShapeBucket(model, hw, &bucket);
    if (!st.ok()) {
      std::fprintf(stderr,
                   "[lce] shape bucket %d px compilation failed: %s\n", hw,
                   st.message().c_str());
      LCE_CHECK(st.ok() &&
                "ServerOptions::input_resolutions requires admissible "
                "resolutions");
    }
    models.push_back(bucket);
    // One weight-sharing sibling per servable batch size, per bucket.
    // Compilation cost is geometry-only (packed weights are shared, the
    // resident-weights gauge does not move); a model whose outputs cannot
    // carry a batch dimension is a configuration error, caught here at
    // startup.
    for (int n = 2; n <= options.max_batch_size; ++n) {
      std::shared_ptr<const CompiledModel> variant;
      st = CompiledModel::CompileBatchVariant(bucket, n, &variant);
      if (!st.ok()) {
        std::fprintf(stderr, "[lce] batch-%d variant compilation failed: %s\n",
                     n, st.message().c_str());
        LCE_CHECK(st.ok() && "max_batch_size > 1 requires a batchable model");
      }
      models.push_back(std::move(variant));
    }
  }
  return models;
}

BatchScheduler::Options Server::SchedulerOptions(const ServerOptions& options) {
  BatchScheduler::Options o;
  o.max_queue_depth = options.max_queue_depth;
  o.max_batch_size = std::max(1, options.max_batch_size);
  o.batch_timeout_ns = options.batch_timeout.count();
  // Execution-time estimate for deadline-aware batch closing: the live
  // serving.execute_ns p50. Empty histogram (cold server) => 0, i.e. the
  // scheduler assumes instant execution until real samples arrive.
  o.execute_estimate_ns = []() -> std::int64_t {
    const telemetry::HistogramSnapshot s = ExecuteHist()->TakeSnapshot();
    return s.count == 0 ? 0 : static_cast<std::int64_t>(s.p50());
  };
  return o;
}

Server::Server(std::shared_ptr<const CompiledModel> model,
               ServerOptions options)
    : options_(std::move(options)),
      base_model_(std::move(model)),
      pool_(BuildModelSet(base_model_, options_),
            std::max(1, options_.max_inflight), options_.execution),
      recorder_(options_.flight_recorder),
      scheduler_(SchedulerOptions(options_)) {
  LCE_CHECK_GT(options_.max_queue_depth, 0);
  LCE_CHECK_GE(options_.max_batch_size, 1);
  // BuildModelSet registered every startup bucket on the model's registry;
  // mirror them here so shaped submits route without touching the compile
  // path.
  registered_buckets_ = base_model_->ShapeBucketResolutions();
  const int executors = std::max(1, options_.max_inflight);
  executors_.reserve(executors);
  for (int i = 0; i < executors; ++i) {
    executors_.emplace_back([this] { ExecutorLoop(); });
  }
  if (options_.stats_export_interval.count() > 0 &&
      !options_.stats_export_path.empty()) {
    exporter_ = std::thread([this] { ExporterLoop(); });
  }
}

Server::~Server() {
  const std::vector<BatchItem> drained = scheduler_.Shutdown();
  QueueDepth()->Set(0);
  for (const auto& item : drained) {
    // Drained requests were enqueued but never reached an executor. The
    // scheduler is shut down, so this thread is the sole owner now.
    item.request->queue_depth_at_admit_ = item.depth_at_admit;
    cancelled_in_queue_.fetch_add(1, std::memory_order_relaxed);
    Finish(item.request, Status::Cancelled("server shutting down"), nullptr,
           /*admitted=*/false);
  }
  for (auto& t : executors_) t.join();
  if (exporter_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(exporter_mu_);
      exporter_stop_ = true;
    }
    exporter_cv_.notify_all();
    exporter_.join();
  }
}

std::shared_ptr<Request> Server::Submit(FillFn fill, DoneFn done,
                                        std::chrono::nanoseconds deadline) {
  return Submit(0, std::move(fill), std::move(done), deadline);
}

Status Server::ResolveShapeBucket(int input_hw, int* shape_key) {
  if (input_hw == 0 || input_hw == base_model_->input_hw()) {
    *shape_key = base_model_->input_hw();
    return Status::Ok();
  }
  {
    std::lock_guard<std::mutex> lock(shape_mu_);
    if (std::find(registered_buckets_.begin(), registered_buckets_.end(),
                  input_hw) != registered_buckets_.end()) {
      *shape_key = input_hw;
      return Status::Ok();
    }
  }
  if (!options_.lazy_shape_compile) {
    return Status::InvalidArgument(
        "no pre-compiled shape bucket for resolution " +
        std::to_string(input_hw) + " and lazy shape compilation is disabled");
  }
  // First request for an unseen resolution pays the bucket compile (O(IR),
  // no weight packing). The model's registry dedups the bucket under
  // concurrent first requests; the pool ignores duplicate (bucket, batch)
  // keys, so the worst case for a race is a redundant batch-variant
  // compile whose result is dropped.
  std::shared_ptr<const CompiledModel> bucket;
  LCE_RETURN_IF_ERROR(
      CompiledModel::GetOrCompileShapeBucket(base_model_, input_hw, &bucket));
  std::vector<std::shared_ptr<const CompiledModel>> add;
  add.push_back(bucket);
  for (int n = 2; n <= options_.max_batch_size; ++n) {
    std::shared_ptr<const CompiledModel> variant;
    LCE_RETURN_IF_ERROR(CompiledModel::CompileBatchVariant(bucket, n,
                                                           &variant));
    add.push_back(std::move(variant));
  }
  pool_.AddModels(std::move(add));
  {
    std::lock_guard<std::mutex> lock(shape_mu_);
    if (std::find(registered_buckets_.begin(), registered_buckets_.end(),
                  input_hw) == registered_buckets_.end()) {
      registered_buckets_.push_back(input_hw);
    }
  }
  *shape_key = input_hw;
  return Status::Ok();
}

std::shared_ptr<Request> Server::Submit(int input_hw, FillFn fill, DoneFn done,
                                        std::chrono::nanoseconds deadline) {
  auto req = std::make_shared<Request>();
  req->fill_ = std::move(fill);
  req->done_fn_ = std::move(done);
  req->id_ = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  req->enqueue_ns_ = telemetry::NowNanos();
  submitted_.fetch_add(1, std::memory_order_relaxed);
  SubmittedTotal()->Add(1);

  // Zero means "unset, apply the server default"; a *negative* budget is a
  // deadline that already passed on the caller's side. Upgrading it to the
  // default would grant an expired request a fresh budget, so it completes
  // here -- before touching the queue -- as expired_in_queue.
  if (deadline.count() < 0) {
    expired_in_queue_.fetch_add(1, std::memory_order_relaxed);
    ExpiredInQueueTotal()->Add(1);
    Finish(req,
           Status::DeadlineExceeded("deadline exhausted before submit"),
           nullptr, /*admitted=*/false);
    return req;
  }
  const auto budget =
      deadline.count() > 0 ? deadline : options_.default_deadline;
  if (budget.count() > 0) req->token_.set_deadline_after(budget);

  // Shape routing before admission: a resolution the server cannot bucket
  // is refused here -- synchronously, like any other shed -- so nothing
  // unservable ever occupies a queue slot. On the lazy path this is also
  // where a first-seen resolution pays its one-time bucket compile.
  int shape_key = 0;
  {
    const Status shape_st = ResolveShapeBucket(input_hw, &shape_key);
    if (!shape_st.ok()) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      shape_rejected_.fetch_add(1, std::memory_order_relaxed);
      ShapeRejectedTotal()->Add(1);
      recorder_.OnShed(req->id_);
      Finish(req, shape_st, nullptr, /*admitted=*/false);
      return req;
    }
  }

  // Admission control: the queue is the only elastic state in the server,
  // and it is bounded (the scheduler refuses beyond max_queue_depth).
  // Shedding here -- synchronously, before any allocation -- is what keeps
  // memory and tail latency flat when arrivals outrun capacity.
  BatchItem item;
  item.request = req;
  item.enqueue_ns = req->enqueue_ns_;
  item.deadline_ns = req->token_.deadline_ns();
  item.shape_key = shape_key;  // batches never mix shape buckets
  // TryEnqueue PUBLISHES the request: the instant it returns, an executor
  // may already be running (or finishing) this request on another thread,
  // so no request state may be written here-after. The depth at admit
  // rides on the BatchItem (stamped under the scheduler lock) and the
  // executor copies it onto the request; this thread only updates gauges.
  int depth = 0;
  const Status st = scheduler_.TryEnqueue(std::move(item), &depth);
  if (st.ok()) {
    QueueDepth()->Set(depth);
    QueueDepthPeak()->SetMax(depth);
    int peak = queue_depth_peak_.load(std::memory_order_relaxed);
    while (peak < depth &&
           !queue_depth_peak_.compare_exchange_weak(
               peak, depth, std::memory_order_relaxed)) {
    }
    return req;
  }
  shed_.fetch_add(1, std::memory_order_relaxed);
  if (st.code() == StatusCode::kResourceExhausted) {
    // Queue full; shutdown refusals (kCancelled) count in shed_ but not in
    // ShedTotal, matching the pre-scheduler behavior.
    ShedTotal()->Add(1);
    recorder_.OnShed(req->id_);
  }
  Finish(req, st, nullptr, /*admitted=*/false);
  return req;
}

Status Server::Infer(FillFn fill, FillFn consume,
                     std::chrono::nanoseconds deadline) {
  return Infer(0, std::move(fill), std::move(consume), deadline);
}

Status Server::Infer(int input_hw, FillFn fill, FillFn consume,
                     std::chrono::nanoseconds deadline) {
  DoneFn done;
  if (consume) {
    done = [consume = std::move(consume)](const Status& s,
                                          ExecutionContext* ctx) {
      if (s.ok() && ctx != nullptr) consume(*ctx);
    };
  }
  return Submit(input_hw, std::move(fill), std::move(done), deadline)->Wait();
}

int Server::queue_depth() const { return scheduler_.depth(); }

ServerStats Server::StatsSnapshot() const {
  ServerStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.expired_in_queue = expired_in_queue_.load(std::memory_order_relaxed);
  s.cancelled_in_queue = cancelled_in_queue_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.completed_ok = completed_ok_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.quarantined = pool_.quarantined();
  s.batches_executed = batches_executed_.load(std::memory_order_relaxed);
  s.shape_rejected = shape_rejected_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(shape_mu_);
    s.shape_buckets = static_cast<int>(registered_buckets_.size());
  }
  s.queue_depth = queue_depth();
  s.queue_depth_peak = queue_depth_peak_.load(std::memory_order_relaxed);
  s.next_request_id = next_request_id_.load(std::memory_order_relaxed);
  s.queue_wait = QueueWaitHist()->TakeSnapshot();
  s.execute = ExecuteHist()->TakeSnapshot();
  s.e2e = E2eHist()->TakeSnapshot();
  s.batch_occupancy = BatchOccupancyHist()->TakeSnapshot();
  return s;
}

void Server::ExecutorLoop() {
  for (;;) {
    std::vector<BatchItem> batch = scheduler_.NextBatch();
    if (batch.empty()) return;  // shutdown with a drained queue
    QueueDepth()->Set(scheduler_.depth());
    ExecuteBatch(std::move(batch));
  }
}

void Server::ExecuteBatch(std::vector<BatchItem> batch) {
  const std::uint64_t dequeue_ns = telemetry::NowNanos();
  // The scheduler only closes same-key batches, so the head item's shape
  // key is every lane's bucket.
  const int shape_hw = batch.front().shape_key;
  // Per-lane queue-wait bookkeeping, then the expired-in-queue filter: a
  // lane whose token fired while queued is completed without ever touching
  // a context, and -- the batching contract -- its eviction shrinks the
  // batch instead of aborting its batchmates.
  std::vector<std::shared_ptr<Request>> lanes;
  lanes.reserve(batch.size());
  for (BatchItem& item : batch) {
    const std::shared_ptr<Request>& req = item.request;
    req->queue_depth_at_admit_ = item.depth_at_admit;
    req->dequeue_ns_ = dequeue_ns;
    req->queue_wait_ns_ =
        static_cast<std::int64_t>(dequeue_ns - req->enqueue_ns_);
    QueueWaitHist()->Record(req->queue_wait_ns_);
    if (telemetry::TracingActive()) {
      telemetry::Tracer::Global().RecordCompleteWithArg(
          "serving/queue_wait", "serving", req->enqueue_ns_, dequeue_ns, "req",
          req->id_);
    }
    if (req->token_.Expired()) {
      const Status st = req->token_.status();
      if (st.code() == StatusCode::kCancelled) {
        cancelled_in_queue_.fetch_add(1, std::memory_order_relaxed);
      } else {
        expired_in_queue_.fetch_add(1, std::memory_order_relaxed);
      }
      ExpiredInQueueTotal()->Add(1);
      Finish(req, st, nullptr, /*admitted=*/false);
      continue;
    }
    lanes.push_back(req);
  }
  if (lanes.empty()) return;
  const int n = static_cast<int>(lanes.size());

  std::unique_ptr<ExecutionContext> ctx;
  Status st = pool_.Acquire(shape_hw, n, &ctx);
  if (!st.ok()) {
    // Pool capacity equals the executor count, so this only fires when a
    // replacement context's arena allocation failed -- shed the batch and
    // leave the slot for a later retry.
    for (const auto& req : lanes) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      ShedTotal()->Add(1);
      recorder_.OnShed(req->id_);
      Finish(req, st, nullptr, /*admitted=*/false);
    }
    return;
  }
  admitted_.fetch_add(n, std::memory_order_relaxed);
  AdmittedTotal()->Add(n);
  // The context carries a request id for the duration of the run so
  // Invoke's spans (invoke + per-node) join the serving spans in the
  // trace; for a multi-lane batch the first lane's id stands for the
  // batch. Cleared before the context returns to the pool.
  ctx->set_request_id(lanes.front()->id_);

  // The batch Invoke runs under one token. A single-lane batch uses the
  // request's own token (exactly the unbatched behavior: cancellation and
  // deadline abort mid-model). A multi-lane batch must not let one lane's
  // trigger abort its batchmates, so it gets a batch token whose deadline
  // is the *latest* lane deadline -- and only if every lane has one
  // (otherwise an unbounded lane keeps the batch unbounded). Lanes whose
  // own deadline fires mid-run are evicted individually after Invoke.
  CancellationToken batch_token;
  if (n > 1) {
    std::int64_t max_deadline = 0;
    bool all_deadlines = true;
    for (const auto& req : lanes) {
      if (!req->token_.has_deadline()) {
        all_deadlines = false;
        break;
      }
      max_deadline = std::max(max_deadline, req->token_.deadline_ns());
    }
    if (all_deadlines) {
      batch_token.set_deadline(CancellationToken::Clock::time_point(
          std::chrono::duration_cast<CancellationToken::Clock::duration>(
              std::chrono::nanoseconds(max_deadline))));
    }
  }
  CancellationToken* invoke_token =
      n == 1 ? &lanes.front()->token_ : &batch_token;

  // Scatter: each lane's fill sees a batch-1 view of the batched input
  // (lane i of dim 0), so request callbacks are identical for batched and
  // unbatched serving.
  const std::uint64_t exec0 = telemetry::NowNanos();
  for (int i = 0; i < n; ++i) {
    ctx->set_io_lane(i);
    lanes[static_cast<std::size_t>(i)]->fill_(*ctx);
  }
  ctx->clear_io_lane();
  st = ctx->Invoke(invoke_token);
  const std::uint64_t exec1 = telemetry::NowNanos();
  const auto exec_ns = static_cast<std::int64_t>(exec1 - exec0);
  const int nodes_executed = ctx->nodes_executed();
  ctx->set_request_id(0);

  batches_executed_.fetch_add(1, std::memory_order_relaxed);
  BatchesExecutedTotal()->Add(1);
  BatchOccupancyHist()->Record(n);
  BucketOccupancyHist(shape_hw)->Record(n);

  // Gather + per-lane outcome classification. Execute time and the e2e
  // latency are recorded per admitted lane (their histogram counts stay
  // equal to the admitted counter, batched or not); a lane whose own token
  // fired during the run is evicted with its token's status and never sees
  // the batch output, everyone else gets the batch status -- with a lane
  // view of the outputs on Ok.
  for (int i = 0; i < n; ++i) {
    const std::shared_ptr<Request>& req = lanes[static_cast<std::size_t>(i)];
    req->exec_ns_ = exec_ns;
    req->nodes_executed_ = nodes_executed;
    ExecuteHist()->Record(exec_ns);
    if (telemetry::TracingActive()) {
      telemetry::Tracer::Global().RecordCompleteWithArg(
          "serving/execute", "serving", exec0, exec1, "req", req->id_);
    }
    Status lane_st = req->token_.Expired() ? req->token_.status() : st;
    if (lane_st.ok()) {
      // done callback (output reads) runs before the context returns to
      // the pool, against this lane's output slice.
      ctx->set_io_lane(i);
      Finish(req, std::move(lane_st), ctx.get(), /*admitted=*/true);
    } else {
      Finish(req, std::move(lane_st), nullptr, /*admitted=*/true);
    }
  }
  ctx->clear_io_lane();
  // Quarantine classifies the *context*, so it follows the batch Invoke
  // status: an Ok run with an individually-expired lane still produced a
  // clean arena and the context is reused; a failed run poisons the arena
  // for every lane and the context is destroyed.
  const bool quarantines = !st.ok();
  const std::int64_t batch_rep_id = lanes.front()->id_;
  pool_.Release(std::move(ctx), st);
  // Quarantine is the flight recorder's always-on trigger: an arena was
  // just poisoned and destroyed, and the evidence of how is still in the
  // ring and the trace buffers.
  if (quarantines) recorder_.OnQuarantine(batch_rep_id);
}

void Server::ExporterLoop() {
  std::unique_lock<std::mutex> lock(exporter_mu_);
  for (;;) {
    const bool stopping = exporter_cv_.wait_for(
        lock, options_.stats_export_interval, [this] { return exporter_stop_; });
    lock.unlock();
    // Export on every tick and once more on shutdown, so even a
    // shorter-lived server leaves a final snapshot behind.
    const std::string json = StatsSnapshot().ToJson();
    std::FILE* f = std::fopen(options_.stats_export_path.c_str(), "w");
    if (f != nullptr) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      StatsExportsTotal()->Add(1);
    } else {
      std::fprintf(stderr, "[lce] stats export failed: cannot open '%s'\n",
                   options_.stats_export_path.c_str());
    }
    lock.lock();
    if (stopping) return;
  }
}

void Server::Finish(const std::shared_ptr<Request>& req, Status status,
                    ExecutionContext* ctx, bool admitted) {
  if (req->done_fn_) req->done_fn_(status, ctx);
  if (admitted) {
    // Outcome classification for requests that ran (or started to): the
    // per-server invariant `admitted == completed_ok + deadline_exceeded +
    // cancelled + failed` needs every admitted request in exactly one
    // bucket, so unlike the process-global counters, post-admission
    // resource exhaustion (scratch allocation failure mid-model) lands in
    // `failed` here.
    switch (status.code()) {
      case StatusCode::kOk:
        completed_ok_.fetch_add(1, std::memory_order_relaxed);
        break;
      case StatusCode::kDeadlineExceeded:
        deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
        break;
      case StatusCode::kCancelled:
        cancelled_.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        failed_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  }
  switch (status.code()) {
    case StatusCode::kOk:
      CompletedOkTotal()->Add(1);
      break;
    case StatusCode::kDeadlineExceeded:
      DeadlineExceededTotal()->Add(1);
      break;
    case StatusCode::kCancelled:
      CancelledTotal()->Add(1);
      break;
    case StatusCode::kResourceExhausted:
      // ShedTotal is counted at the shed site (admission or pool) so the
      // counter means "requests the server refused", not "requests that
      // failed with this code".
      break;
    default:
      FailedTotal()->Add(1);
      break;
  }
  const std::uint64_t finish_ns = telemetry::NowNanos();
  if (admitted) {
    E2eHist()->Record(static_cast<std::int64_t>(finish_ns - req->enqueue_ns_));
  }
  RequestSummary summary;
  summary.request_id = req->id_;
  summary.outcome = status.code();
  summary.enqueue_ns = req->enqueue_ns_;
  summary.dequeue_ns = req->dequeue_ns_;
  summary.finish_ns = finish_ns;
  summary.queue_depth_at_admit = req->queue_depth_at_admit_;
  summary.nodes_executed = req->nodes_executed_;
  recorder_.RecordRequest(summary);
  req->Complete(std::move(status));
}

}  // namespace lce::serving
