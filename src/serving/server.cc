#include "serving/server.h"

#include <algorithm>
#include <string>
#include <utility>

#include "core/macros.h"
#include "telemetry/clock.h"
#include "telemetry/metrics.h"
#include "telemetry/tracer.h"

namespace lce::serving {
namespace {

telemetry::Metric* Counter(const char* name) {
  return telemetry::MetricsRegistry::Global().Counter(name);
}

telemetry::Metric* SubmittedTotal() {
  static telemetry::Metric* m = Counter("serving.submitted_total");
  return m;
}
telemetry::Metric* ShedTotal() {
  static telemetry::Metric* m = Counter("serving.shed_total");
  return m;
}
telemetry::Metric* AdmittedTotal() {
  static telemetry::Metric* m = Counter("serving.admitted_total");
  return m;
}
telemetry::Metric* CompletedOkTotal() {
  static telemetry::Metric* m = Counter("serving.completed_ok_total");
  return m;
}
telemetry::Metric* ExpiredInQueueTotal() {
  static telemetry::Metric* m = Counter("serving.expired_in_queue_total");
  return m;
}
telemetry::Metric* DeadlineExceededTotal() {
  static telemetry::Metric* m = Counter("serving.deadline_exceeded_total");
  return m;
}
telemetry::Metric* CancelledTotal() {
  static telemetry::Metric* m = Counter("serving.cancelled_total");
  return m;
}
telemetry::Metric* FailedTotal() {
  static telemetry::Metric* m = Counter("serving.failed_total");
  return m;
}
telemetry::Metric* QueueDepth() {
  static telemetry::Metric* m =
      telemetry::MetricsRegistry::Global().Gauge("serving.queue_depth");
  return m;
}
telemetry::Metric* QueueDepthPeak() {
  static telemetry::Metric* m =
      telemetry::MetricsRegistry::Global().Gauge("serving.queue_depth_peak");
  return m;
}

}  // namespace

const Status& Request::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return done_; });
  return status_;
}

bool Request::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

Status Request::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

void Request::Complete(Status status) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (done_) return;
    status_ = std::move(status);
    done_ = true;
  }
  cv_.notify_all();
}

Server::Server(std::shared_ptr<const CompiledModel> model,
               ServerOptions options)
    : options_(std::move(options)),
      pool_(std::move(model), std::max(1, options_.max_inflight),
            options_.execution) {
  LCE_CHECK_GT(options_.max_queue_depth, 0);
  const int executors = std::max(1, options_.max_inflight);
  executors_.reserve(executors);
  for (int i = 0; i < executors; ++i) {
    executors_.emplace_back([this] { ExecutorLoop(); });
  }
}

Server::~Server() {
  std::deque<std::shared_ptr<Request>> drained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    drained.swap(queue_);
    QueueDepth()->Set(0);
  }
  cv_.notify_all();
  for (const auto& req : drained) {
    Finish(req, Status::Cancelled("server shutting down"), nullptr);
  }
  for (auto& t : executors_) t.join();
}

std::shared_ptr<Request> Server::Submit(FillFn fill, DoneFn done,
                                        std::chrono::nanoseconds deadline) {
  auto req = std::make_shared<Request>();
  req->fill_ = std::move(fill);
  req->done_fn_ = std::move(done);
  const auto budget =
      deadline.count() > 0 ? deadline : options_.default_deadline;
  if (budget.count() > 0) req->token_.set_deadline_after(budget);
  req->enqueue_ns_ = telemetry::NowNanos();
  SubmittedTotal()->Add(1);

  bool shed = false;
  bool down = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      down = true;
    } else if (static_cast<int>(queue_.size()) >= options_.max_queue_depth) {
      // Admission control: the queue is the only elastic state in the
      // server, and it is bounded. Shedding here -- synchronously, before
      // any allocation -- is what keeps memory and tail latency flat when
      // arrivals outrun capacity.
      shed = true;
    } else {
      queue_.push_back(req);
      const auto depth = static_cast<std::int64_t>(queue_.size());
      QueueDepth()->Set(depth);
      QueueDepthPeak()->SetMax(depth);
    }
  }
  if (down) {
    Finish(req, Status::Cancelled("server shutting down"), nullptr);
  } else if (shed) {
    ShedTotal()->Add(1);
    Finish(req,
           Status::ResourceExhausted(
               "admission queue full (max_queue_depth=" +
               std::to_string(options_.max_queue_depth) + ")"),
           nullptr);
  } else {
    cv_.notify_one();
  }
  return req;
}

Status Server::Infer(FillFn fill, FillFn consume,
                     std::chrono::nanoseconds deadline) {
  DoneFn done;
  if (consume) {
    done = [consume = std::move(consume)](const Status& s,
                                          ExecutionContext* ctx) {
      if (s.ok() && ctx != nullptr) consume(*ctx);
    };
  }
  return Submit(std::move(fill), std::move(done), deadline)->Wait();
}

int Server::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(queue_.size());
}

void Server::ExecutorLoop() {
  for (;;) {
    std::shared_ptr<Request> req;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      req = std::move(queue_.front());
      queue_.pop_front();
      QueueDepth()->Set(static_cast<std::int64_t>(queue_.size()));
    }
    const std::uint64_t dequeue_ns = telemetry::NowNanos();
    req->queue_wait_ns_ =
        static_cast<std::int64_t>(dequeue_ns - req->enqueue_ns_);
    if (telemetry::TracingActive()) {
      telemetry::Tracer::Global().RecordComplete(
          "serving/queue_wait", "serving", req->enqueue_ns_, dequeue_ns);
    }
    // A request that expired while queued is completed without ever
    // touching a context -- under overload this is the cheap path that
    // keeps executors available for requests that can still make their
    // deadline.
    if (req->token_.Expired()) {
      ExpiredInQueueTotal()->Add(1);
      Finish(req, req->token_.status(), nullptr);
      continue;
    }
    std::unique_ptr<ExecutionContext> ctx;
    Status st = pool_.Acquire(&ctx);
    if (!st.ok()) {
      // Pool capacity equals the executor count, so this only fires when a
      // replacement context's arena allocation failed -- shed the request
      // and leave the slot for a later retry.
      ShedTotal()->Add(1);
      Finish(req, std::move(st), nullptr);
      continue;
    }
    AdmittedTotal()->Add(1);
    const std::uint64_t exec0 = telemetry::NowNanos();
    req->fill_(*ctx);
    st = ctx->Invoke(&req->token_);
    const std::uint64_t exec1 = telemetry::NowNanos();
    req->exec_ns_ = static_cast<std::int64_t>(exec1 - exec0);
    if (telemetry::TracingActive()) {
      telemetry::Tracer::Global().RecordComplete("serving/execute", "serving",
                                                 exec0, exec1);
    }
    // done callback (output reads) runs before the context returns to the
    // pool; Release then resets (Ok) or quarantines (non-Ok) it.
    Finish(req, st, st.ok() ? ctx.get() : nullptr);
    pool_.Release(std::move(ctx), st);
  }
}

void Server::Finish(const std::shared_ptr<Request>& req, Status status,
                    ExecutionContext* ctx) {
  if (req->done_fn_) req->done_fn_(status, ctx);
  switch (status.code()) {
    case StatusCode::kOk:
      CompletedOkTotal()->Add(1);
      break;
    case StatusCode::kDeadlineExceeded:
      DeadlineExceededTotal()->Add(1);
      break;
    case StatusCode::kCancelled:
      CancelledTotal()->Add(1);
      break;
    case StatusCode::kResourceExhausted:
      // ShedTotal is counted at the shed site (admission or pool) so the
      // counter means "requests the server refused", not "requests that
      // failed with this code".
      break;
    default:
      FailedTotal()->Add(1);
      break;
  }
  req->Complete(std::move(status));
}

}  // namespace lce::serving
