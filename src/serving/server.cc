#include "serving/server.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>

#include "core/macros.h"
#include "telemetry/clock.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/tracer.h"

namespace lce::serving {
namespace {

telemetry::Metric* Counter(const char* name) {
  return telemetry::MetricsRegistry::Global().Counter(name);
}

telemetry::Metric* SubmittedTotal() {
  static telemetry::Metric* m = Counter("serving.submitted_total");
  return m;
}
telemetry::Metric* ShedTotal() {
  static telemetry::Metric* m = Counter("serving.shed_total");
  return m;
}
telemetry::Metric* AdmittedTotal() {
  static telemetry::Metric* m = Counter("serving.admitted_total");
  return m;
}
telemetry::Metric* CompletedOkTotal() {
  static telemetry::Metric* m = Counter("serving.completed_ok_total");
  return m;
}
telemetry::Metric* ExpiredInQueueTotal() {
  static telemetry::Metric* m = Counter("serving.expired_in_queue_total");
  return m;
}
telemetry::Metric* DeadlineExceededTotal() {
  static telemetry::Metric* m = Counter("serving.deadline_exceeded_total");
  return m;
}
telemetry::Metric* CancelledTotal() {
  static telemetry::Metric* m = Counter("serving.cancelled_total");
  return m;
}
telemetry::Metric* FailedTotal() {
  static telemetry::Metric* m = Counter("serving.failed_total");
  return m;
}
telemetry::Metric* StatsExportsTotal() {
  static telemetry::Metric* m = Counter("serving.stats_exports_total");
  return m;
}
telemetry::Metric* QueueDepth() {
  static telemetry::Metric* m =
      telemetry::MetricsRegistry::Global().Gauge("serving.queue_depth");
  return m;
}
telemetry::Metric* QueueDepthPeak() {
  static telemetry::Metric* m =
      telemetry::MetricsRegistry::Global().Gauge("serving.queue_depth_peak");
  return m;
}

// The serving latency distributions (docs/OBSERVABILITY.md). Process-wide,
// like every registry metric: servers in one process share them, and tests
// reconcile count *deltas* against per-server counters.
//   queue_wait -- enqueue to executor pickup, recorded for every dequeued
//                 request (including ones that then expire or are shed);
//   execute    -- fill + Invoke, recorded iff the request was admitted;
//   e2e        -- enqueue to terminal state, recorded iff admitted, so its
//                 count always equals execute's and the admitted counter.
telemetry::Histogram* QueueWaitHist() {
  static telemetry::Histogram* h =
      telemetry::MetricsRegistry::Global().Histogram("serving.queue_wait_ns");
  return h;
}
telemetry::Histogram* ExecuteHist() {
  static telemetry::Histogram* h =
      telemetry::MetricsRegistry::Global().Histogram("serving.execute_ns");
  return h;
}
telemetry::Histogram* E2eHist() {
  static telemetry::Histogram* h =
      telemetry::MetricsRegistry::Global().Histogram("serving.e2e_ns");
  return h;
}

}  // namespace

std::string ServerStats::ToJson() const {
  std::string out = "{\n";
  out += "  \"submitted\": " + std::to_string(submitted) + ",\n";
  out += "  \"shed\": " + std::to_string(shed) + ",\n";
  out += "  \"expired_in_queue\": " + std::to_string(expired_in_queue) + ",\n";
  out +=
      "  \"cancelled_in_queue\": " + std::to_string(cancelled_in_queue) + ",\n";
  out += "  \"admitted\": " + std::to_string(admitted) + ",\n";
  out += "  \"completed_ok\": " + std::to_string(completed_ok) + ",\n";
  out += "  \"deadline_exceeded\": " + std::to_string(deadline_exceeded) +
         ",\n";
  out += "  \"cancelled\": " + std::to_string(cancelled) + ",\n";
  out += "  \"failed\": " + std::to_string(failed) + ",\n";
  out += "  \"quarantined\": " + std::to_string(quarantined) + ",\n";
  out += "  \"queue_depth\": " + std::to_string(queue_depth) + ",\n";
  out += "  \"queue_depth_peak\": " + std::to_string(queue_depth_peak) + ",\n";
  out += "  \"next_request_id\": " + std::to_string(next_request_id) + ",\n";
  out += "  \"queue_wait_ns\": " + queue_wait.ToJson() + ",\n";
  out += "  \"execute_ns\": " + execute.ToJson() + ",\n";
  out += "  \"e2e_ns\": " + e2e.ToJson() + "\n";
  out += "}\n";
  return out;
}

const Status& Request::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return done_; });
  return status_;
}

bool Request::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

Status Request::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

void Request::Complete(Status status) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (done_) return;
    status_ = std::move(status);
    done_ = true;
  }
  cv_.notify_all();
}

Server::Server(std::shared_ptr<const CompiledModel> model,
               ServerOptions options)
    : options_(std::move(options)),
      pool_(std::move(model), std::max(1, options_.max_inflight),
            options_.execution),
      recorder_(options_.flight_recorder) {
  LCE_CHECK_GT(options_.max_queue_depth, 0);
  const int executors = std::max(1, options_.max_inflight);
  executors_.reserve(executors);
  for (int i = 0; i < executors; ++i) {
    executors_.emplace_back([this] { ExecutorLoop(); });
  }
  if (options_.stats_export_interval.count() > 0 &&
      !options_.stats_export_path.empty()) {
    exporter_ = std::thread([this] { ExporterLoop(); });
  }
}

Server::~Server() {
  std::deque<std::shared_ptr<Request>> drained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    drained.swap(queue_);
    QueueDepth()->Set(0);
  }
  cv_.notify_all();
  for (const auto& req : drained) {
    // Drained requests were enqueued but never reached an executor.
    cancelled_in_queue_.fetch_add(1, std::memory_order_relaxed);
    Finish(req, Status::Cancelled("server shutting down"), nullptr,
           /*admitted=*/false);
  }
  for (auto& t : executors_) t.join();
  if (exporter_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(exporter_mu_);
      exporter_stop_ = true;
    }
    exporter_cv_.notify_all();
    exporter_.join();
  }
}

std::shared_ptr<Request> Server::Submit(FillFn fill, DoneFn done,
                                        std::chrono::nanoseconds deadline) {
  auto req = std::make_shared<Request>();
  req->fill_ = std::move(fill);
  req->done_fn_ = std::move(done);
  req->id_ = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  const auto budget =
      deadline.count() > 0 ? deadline : options_.default_deadline;
  if (budget.count() > 0) req->token_.set_deadline_after(budget);
  req->enqueue_ns_ = telemetry::NowNanos();
  submitted_.fetch_add(1, std::memory_order_relaxed);
  SubmittedTotal()->Add(1);

  bool shed = false;
  bool down = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      down = true;
    } else if (static_cast<int>(queue_.size()) >= options_.max_queue_depth) {
      // Admission control: the queue is the only elastic state in the
      // server, and it is bounded. Shedding here -- synchronously, before
      // any allocation -- is what keeps memory and tail latency flat when
      // arrivals outrun capacity.
      shed = true;
    } else {
      queue_.push_back(req);
      const auto depth = static_cast<std::int64_t>(queue_.size());
      req->queue_depth_at_admit_ = static_cast<int>(depth);
      QueueDepth()->Set(depth);
      QueueDepthPeak()->SetMax(depth);
      int peak = queue_depth_peak_.load(std::memory_order_relaxed);
      while (peak < depth && !queue_depth_peak_.compare_exchange_weak(
                                 peak, static_cast<int>(depth),
                                 std::memory_order_relaxed)) {
      }
    }
  }
  if (down) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    Finish(req, Status::Cancelled("server shutting down"), nullptr,
           /*admitted=*/false);
  } else if (shed) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    ShedTotal()->Add(1);
    recorder_.OnShed(req->id_);
    Finish(req,
           Status::ResourceExhausted(
               "admission queue full (max_queue_depth=" +
               std::to_string(options_.max_queue_depth) + ")"),
           nullptr, /*admitted=*/false);
  } else {
    cv_.notify_one();
  }
  return req;
}

Status Server::Infer(FillFn fill, FillFn consume,
                     std::chrono::nanoseconds deadline) {
  DoneFn done;
  if (consume) {
    done = [consume = std::move(consume)](const Status& s,
                                          ExecutionContext* ctx) {
      if (s.ok() && ctx != nullptr) consume(*ctx);
    };
  }
  return Submit(std::move(fill), std::move(done), deadline)->Wait();
}

int Server::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(queue_.size());
}

ServerStats Server::StatsSnapshot() const {
  ServerStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.expired_in_queue = expired_in_queue_.load(std::memory_order_relaxed);
  s.cancelled_in_queue = cancelled_in_queue_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.completed_ok = completed_ok_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.quarantined = pool_.quarantined();
  s.queue_depth = queue_depth();
  s.queue_depth_peak = queue_depth_peak_.load(std::memory_order_relaxed);
  s.next_request_id = next_request_id_.load(std::memory_order_relaxed);
  s.queue_wait = QueueWaitHist()->TakeSnapshot();
  s.execute = ExecuteHist()->TakeSnapshot();
  s.e2e = E2eHist()->TakeSnapshot();
  return s;
}

void Server::ExecutorLoop() {
  for (;;) {
    std::shared_ptr<Request> req;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      req = std::move(queue_.front());
      queue_.pop_front();
      QueueDepth()->Set(static_cast<std::int64_t>(queue_.size()));
    }
    const std::uint64_t dequeue_ns = telemetry::NowNanos();
    req->dequeue_ns_ = dequeue_ns;
    req->queue_wait_ns_ =
        static_cast<std::int64_t>(dequeue_ns - req->enqueue_ns_);
    QueueWaitHist()->Record(req->queue_wait_ns_);
    if (telemetry::TracingActive()) {
      telemetry::Tracer::Global().RecordCompleteWithArg(
          "serving/queue_wait", "serving", req->enqueue_ns_, dequeue_ns, "req",
          req->id_);
    }
    // A request that expired while queued is completed without ever
    // touching a context -- under overload this is the cheap path that
    // keeps executors available for requests that can still make their
    // deadline.
    if (req->token_.Expired()) {
      const Status st = req->token_.status();
      if (st.code() == StatusCode::kCancelled) {
        cancelled_in_queue_.fetch_add(1, std::memory_order_relaxed);
      } else {
        expired_in_queue_.fetch_add(1, std::memory_order_relaxed);
      }
      ExpiredInQueueTotal()->Add(1);
      Finish(req, st, nullptr, /*admitted=*/false);
      continue;
    }
    std::unique_ptr<ExecutionContext> ctx;
    Status st = pool_.Acquire(&ctx);
    if (!st.ok()) {
      // Pool capacity equals the executor count, so this only fires when a
      // replacement context's arena allocation failed -- shed the request
      // and leave the slot for a later retry.
      shed_.fetch_add(1, std::memory_order_relaxed);
      ShedTotal()->Add(1);
      recorder_.OnShed(req->id_);
      Finish(req, std::move(st), nullptr, /*admitted=*/false);
      continue;
    }
    admitted_.fetch_add(1, std::memory_order_relaxed);
    AdmittedTotal()->Add(1);
    // The context carries the request id for the duration of the run so
    // Invoke's spans (invoke + per-node) join this request's serving spans
    // in the trace; cleared before the context returns to the pool.
    ctx->set_request_id(req->id_);
    const std::uint64_t exec0 = telemetry::NowNanos();
    req->fill_(*ctx);
    st = ctx->Invoke(&req->token_);
    const std::uint64_t exec1 = telemetry::NowNanos();
    req->exec_ns_ = static_cast<std::int64_t>(exec1 - exec0);
    req->nodes_executed_ = ctx->nodes_executed();
    ctx->set_request_id(0);
    ExecuteHist()->Record(req->exec_ns_);
    if (telemetry::TracingActive()) {
      telemetry::Tracer::Global().RecordCompleteWithArg(
          "serving/execute", "serving", exec0, exec1, "req", req->id_);
    }
    // done callback (output reads) runs before the context returns to the
    // pool; Release then resets (Ok) or quarantines (non-Ok) it.
    const bool quarantines = !st.ok();
    const std::int64_t req_id = req->id_;
    Finish(req, st, st.ok() ? ctx.get() : nullptr, /*admitted=*/true);
    pool_.Release(std::move(ctx), st);
    // Quarantine is the flight recorder's always-on trigger: an arena was
    // just poisoned and destroyed, and the evidence of how is still in the
    // ring and the trace buffers.
    if (quarantines) recorder_.OnQuarantine(req_id);
  }
}

void Server::ExporterLoop() {
  std::unique_lock<std::mutex> lock(exporter_mu_);
  for (;;) {
    const bool stopping = exporter_cv_.wait_for(
        lock, options_.stats_export_interval, [this] { return exporter_stop_; });
    lock.unlock();
    // Export on every tick and once more on shutdown, so even a
    // shorter-lived server leaves a final snapshot behind.
    const std::string json = StatsSnapshot().ToJson();
    std::FILE* f = std::fopen(options_.stats_export_path.c_str(), "w");
    if (f != nullptr) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      StatsExportsTotal()->Add(1);
    } else {
      std::fprintf(stderr, "[lce] stats export failed: cannot open '%s'\n",
                   options_.stats_export_path.c_str());
    }
    lock.lock();
    if (stopping) return;
  }
}

void Server::Finish(const std::shared_ptr<Request>& req, Status status,
                    ExecutionContext* ctx, bool admitted) {
  if (req->done_fn_) req->done_fn_(status, ctx);
  if (admitted) {
    // Outcome classification for requests that ran (or started to): the
    // per-server invariant `admitted == completed_ok + deadline_exceeded +
    // cancelled + failed` needs every admitted request in exactly one
    // bucket, so unlike the process-global counters, post-admission
    // resource exhaustion (scratch allocation failure mid-model) lands in
    // `failed` here.
    switch (status.code()) {
      case StatusCode::kOk:
        completed_ok_.fetch_add(1, std::memory_order_relaxed);
        break;
      case StatusCode::kDeadlineExceeded:
        deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
        break;
      case StatusCode::kCancelled:
        cancelled_.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        failed_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  }
  switch (status.code()) {
    case StatusCode::kOk:
      CompletedOkTotal()->Add(1);
      break;
    case StatusCode::kDeadlineExceeded:
      DeadlineExceededTotal()->Add(1);
      break;
    case StatusCode::kCancelled:
      CancelledTotal()->Add(1);
      break;
    case StatusCode::kResourceExhausted:
      // ShedTotal is counted at the shed site (admission or pool) so the
      // counter means "requests the server refused", not "requests that
      // failed with this code".
      break;
    default:
      FailedTotal()->Add(1);
      break;
  }
  const std::uint64_t finish_ns = telemetry::NowNanos();
  if (admitted) {
    E2eHist()->Record(static_cast<std::int64_t>(finish_ns - req->enqueue_ns_));
  }
  RequestSummary summary;
  summary.request_id = req->id_;
  summary.outcome = status.code();
  summary.enqueue_ns = req->enqueue_ns_;
  summary.dequeue_ns = req->dequeue_ns_;
  summary.finish_ns = finish_ns;
  summary.queue_depth_at_admit = req->queue_depth_at_admit_;
  summary.nodes_executed = req->nodes_executed_;
  recorder_.RecordRequest(summary);
  req->Complete(std::move(status));
}

}  // namespace lce::serving
