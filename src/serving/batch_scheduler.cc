#include "serving/batch_scheduler.h"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <limits>
#include <string>
#include <utility>

#include "core/cancellation.h"
#include "core/macros.h"
#include "telemetry/clock.h"

namespace lce::serving {

BatchScheduler::BatchScheduler(Options options)
    : options_(std::move(options)) {
  LCE_CHECK_GT(options_.max_queue_depth, 0);
  LCE_CHECK_GE(options_.max_batch_size, 1);
  LCE_CHECK_GE(options_.batch_timeout_ns, 0);
}

Status BatchScheduler::TryEnqueue(BatchItem item, int* depth_at_admit) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return Status::Cancelled("server shutting down");
    }
    if (static_cast<int>(queue_.size()) >= options_.max_queue_depth) {
      return Status::ResourceExhausted(
          "admission queue full (max_queue_depth=" +
          std::to_string(options_.max_queue_depth) + ")");
    }
    const int depth = static_cast<int>(queue_.size()) + 1;
    item.depth_at_admit = depth;  // before publication -- see BatchItem
    queue_.push_back(std::move(item));
    depth_peak_ = std::max(depth_peak_, depth);
    if (depth_at_admit != nullptr) *depth_at_admit = depth;
  }
  // Wakes one executor: either an idle one (which may pop immediately if
  // the batch is now closed) or one holding a timed wait on a partial
  // batch (which re-evaluates the close condition with this arrival).
  cv_.notify_one();
  return Status::Ok();
}

std::int64_t BatchScheduler::CloseDeadlineNs() const {
  // Timeout close: the oldest member bounds how long the batch stays open.
  // A zero timeout makes this instant `enqueue_ns` itself, i.e. "close
  // with whatever is here" -- opportunistic batching. The head item always
  // belongs to the closing batch (batches form around the head's shape
  // key), so its enqueue time is the right timeout anchor.
  std::int64_t close =
      static_cast<std::int64_t>(queue_.front().enqueue_ns) +
      options_.batch_timeout_ns;
  // Deadline-aware close: don't hold any *member of this batch* past the
  // last instant it could still start executing and make its deadline.
  // Only the first max_batch_size head-key items can be in the closing
  // batch; items under other shape keys wait for a later batch and do not
  // tighten this one's close.
  std::int64_t est = 0;
  if (options_.execute_estimate_ns) {
    est = std::max<std::int64_t>(0, options_.execute_estimate_ns());
  }
  const int head_key = queue_.front().shape_key;
  int members = 0;
  for (const BatchItem& item : queue_) {
    if (item.shape_key != head_key) continue;
    if (members++ >= options_.max_batch_size) break;
    if (item.deadline_ns == CancellationToken::kNoDeadline) continue;
    close = std::min(close, item.deadline_ns - est);
  }
  return close;
}

std::vector<BatchItem> BatchScheduler::NextBatch() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    // Shutdown() drains the queue under the lock, so shutdown implies an
    // empty queue here; empty + awake means "exit".
    if (queue_.empty()) return {};
    // The batch forms around the head item's shape key: count its
    // compatible members across the whole queue (only same-key items can
    // share the batch-N Invoke).
    const int head_key = queue_.front().shape_key;
    int matching = 0;
    for (const BatchItem& item : queue_) {
      if (item.shape_key == head_key) ++matching;
    }
    const bool full = matching >= options_.max_batch_size;
    std::int64_t close = 0;
    if (!full) {
      close = CloseDeadlineNs();
      const auto now = static_cast<std::int64_t>(telemetry::NowNanos());
      if (now < close) {
        // Hold the batch open for more lanes, but never past `close`.
        // Arrivals and Shutdown() notify; a timeout simply re-evaluates.
        cv_.wait_for(lock, std::chrono::nanoseconds(close - now));
        continue;
      }
    }
    if (full) {
      ++closed_full_;
    } else {
      ++closed_timeout_;
    }
    const std::size_t n = static_cast<std::size_t>(
        std::min<int>(matching, options_.max_batch_size));
    std::vector<BatchItem> batch;
    batch.reserve(n);
    // Pop the head-key members in FIFO order; items under other shape keys
    // keep their queue positions (and their FIFO order) for later batches.
    for (auto it = queue_.begin(); it != queue_.end() && batch.size() < n;) {
      if (it->shape_key == head_key) {
        batch.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    return batch;
  }
}

std::vector<BatchItem> BatchScheduler::Shutdown() {
  std::vector<BatchItem> drained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    drained.assign(std::make_move_iterator(queue_.begin()),
                   std::make_move_iterator(queue_.end()));
    queue_.clear();
  }
  cv_.notify_all();
  return drained;
}

int BatchScheduler::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(queue_.size());
}

int BatchScheduler::depth_peak() const {
  std::lock_guard<std::mutex> lock(mu_);
  return depth_peak_;
}

std::int64_t BatchScheduler::closed_full() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_full_;
}

std::int64_t BatchScheduler::closed_timeout() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_timeout_;
}

}  // namespace lce::serving
