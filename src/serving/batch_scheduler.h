// Deadline-aware dynamic batching between admission and execution
// (docs/SERVING.md, "Batching semantics").
//
// The scheduler owns the server's admission queue. Executors no longer pop
// one request at a time; they call NextBatch(), which blocks until a batch
// is *closed* and hands the whole batch over for one batch-N Invoke. A
// batch closes when either
//
//   * SIZE:    `max_batch_size` requests are queued (closed_full), or
//   * TIME:    the close deadline passes (closed_timeout). The close
//              deadline is the earlier of
//                - oldest.enqueue_ns + batch_timeout_ns  (bounded added
//                  latency: no request waits for lanes longer than the
//                  configured timeout), and
//                - min(deadline_i) - est_execute_ns      (SLO awareness:
//                  never hold a batch open past the point where its most
//                  urgent member could still execute and make its
//                  deadline; est_execute_ns is the serving.execute_ns p50
//                  supplied by the server).
//
// batch_timeout_ns == 0 degenerates to opportunistic batching: take
// whatever is queued right now, never wait for more. max_batch_size == 1
// reproduces the unbatched FIFO executor exactly.
//
// SHAPE KEYS (docs/SERVING.md, "Multi-resolution serving"). A batch is one
// batch-N Invoke of one compiled variant, so every lane must share that
// variant's input resolution -- batches never mix shape buckets. Each item
// carries an opaque `shape_key` (the server stamps the bucket resolution);
// a closing batch takes up to max_batch_size items matching the *head*
// item's key, scanned in FIFO order, leaving other keys queued in their
// original order. Close conditions (size, timeout, deadline) are evaluated
// over the head-key members only: the head item is the oldest request in
// the queue, so head-key-first is deadline-honest, and a minority
// resolution can never be starved -- its oldest item eventually becomes
// the head. Uniform-key traffic (the pre-bucket world) behaves exactly as
// before.
//
// The scheduler is deliberately metrics-free and knows nothing about
// contexts or models -- it moves BatchItems (request handle + timing
// metadata) and is unit-testable without a Server.
#ifndef LCE_SERVING_BATCH_SCHEDULER_H_
#define LCE_SERVING_BATCH_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/status.h"

namespace lce::serving {

class Request;

// One queued request as the scheduler sees it. The request pointer is an
// opaque handle here (never dereferenced), which keeps this header free of
// a server.h include cycle; the server interprets it on the way out.
struct BatchItem {
  std::shared_ptr<Request> request;
  // Steady-clock nanoseconds (telemetry::NowNanos epoch) at enqueue.
  std::uint64_t enqueue_ns = 0;
  // Absolute steady-clock deadline of the request's token, or
  // CancellationToken::kNoDeadline (int64 max) when the request has none.
  std::int64_t deadline_ns = 0;
  // Queue depth including this item, stamped by TryEnqueue under the
  // scheduler lock *before* the item becomes visible to executors. The
  // executor copies it onto the request -- the submitter must not write
  // request state after TryEnqueue returns (the request is already shared
  // with a concurrently-running executor by then).
  int depth_at_admit = 0;
  // Opaque batching-compatibility key (see file comment): only items with
  // equal keys share a batch. The server stamps the shape-bucket
  // resolution; 0 (everywhere) reproduces keyless batching.
  int shape_key = 0;
};

class BatchScheduler {
 public:
  struct Options {
    // Enqueues beyond this bound are refused with ResourceExhausted.
    int max_queue_depth = 64;
    // A batch closes as soon as this many requests are queued.
    int max_batch_size = 1;
    // Maximum time the oldest queued request waits for more lanes before
    // the batch closes anyway. Zero = opportunistic (never wait).
    std::int64_t batch_timeout_ns = 0;
    // Estimated batch execution time, used to close early for SLO-bound
    // requests (see file comment). Null or a <=0 return disables the
    // estimate (deadline-aware close then uses the raw deadlines).
    std::function<std::int64_t()> execute_estimate_ns;
  };

  explicit BatchScheduler(Options options);

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  // Admission: appends `item` in FIFO order. Fails with ResourceExhausted
  // when the queue is full, Cancelled after Shutdown(). On success,
  // `*depth_at_admit` (optional) receives the queue depth including this
  // item.
  Status TryEnqueue(BatchItem item, int* depth_at_admit = nullptr);

  // Blocks until a batch closes, then pops and returns it (oldest first,
  // at most max_batch_size items). Returns an empty vector only at
  // shutdown with a drained queue -- the executor's signal to exit.
  std::vector<BatchItem> NextBatch();

  // Marks the scheduler shut down (all later TryEnqueues fail, blocked
  // NextBatch callers wake and drain) and returns every item still queued
  // so the server can complete them as cancelled-in-queue.
  std::vector<BatchItem> Shutdown();

  // Requests currently queued / the high-water mark.
  int depth() const;
  int depth_peak() const;

  // How batches closed so far (tests assert the close reason).
  std::int64_t closed_full() const;
  std::int64_t closed_timeout() const;

 private:
  // Steady-ns instant at which the pending batch must close. Requires mu_.
  std::int64_t CloseDeadlineNs() const;

  const Options options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<BatchItem> queue_;
  bool shutdown_ = false;
  int depth_peak_ = 0;
  std::int64_t closed_full_ = 0;
  std::int64_t closed_timeout_ = 0;
};

}  // namespace lce::serving

#endif  // LCE_SERVING_BATCH_SCHEDULER_H_
