// Overload-safe serving core: bounded admission, deadlines, cancellation
// and an ExecutionContext pool on top of one shared CompiledModel
// (docs/SERVING.md, "Overload & failure semantics").
//
// The contract under hostile traffic:
//
//   * BOUNDED QUEUE. At most `max_queue_depth` requests wait and at most
//     `max_inflight` execute; everything beyond that is shed *at submit
//     time* with Status::ResourceExhausted. Memory is therefore flat in
//     offered load: arenas scale with max_inflight (the context pool), the
//     queue holds only request descriptors, and
//     `serving.resident_arena_bytes` stays constant at 2x arrival overload
//     (asserted by bench_serving_throughput --open-loop).
//
//   * DEADLINES PROPAGATE. A request carries a CancellationToken with its
//     deadline. Expiry in the queue completes the request with
//     kDeadlineExceeded without ever touching a context; expiry mid-model
//     is caught at per-node boundaries and at row-tile-block boundaries
//     inside the ConvPipeline engine, so a hopeless request stops burning
//     CPU within one block, not one model.
//
//   * FAILED RUNS QUARANTINE. Any non-Ok Invoke (deadline, cancel, induced
//     kernel error, scratch exhaustion) sends the context to the pool's
//     quarantine path -- its arena is never reused -- while the server
//     itself keeps serving; recovery is a fresh context on the next
//     request.
//
//   * BATCHING IS DYNAMIC. With `max_batch_size > 1` the admission queue
//     is owned by a BatchScheduler: executors pull *batches* (closed by
//     size or by a deadline-aware timeout, see serving/batch_scheduler.h)
//     and run them as one batch-N Invoke on a sibling CompiledModel
//     variant that shares the base model's packed weights. Requests keep
//     single-request semantics -- fill/done see a batch-1 lane view of the
//     batched tensors, and one lane's expiry or cancellation evicts only
//     that lane's result, never its batchmates'.
//
//   * RESOLUTIONS ARE BUCKETED (docs/SERVING.md, "Multi-resolution
//     serving"). The shaped Submit/Infer overloads route a request to the
//     shape bucket for its square input resolution: a weight-sharing
//     CompiledModel sibling compiled for that resolution, pre-built from
//     ServerOptions::input_resolutions or compiled lazily on the first
//     request for an unseen admissible resolution. Batches never mix
//     buckets (the scheduler keys on the bucket), contexts are pooled per
//     (bucket, batch) so a request can never execute against an arena
//     planned for another resolution, and packed weights stay flat however
//     many buckets are live. A resolution the model cannot serve is
//     rejected at submit time (InvalidArgument / ResourceExhausted, counted
//     in `shed` and serving.shape_rejected_total), never executed wrong.
//
// One Server owns `max_inflight` executor threads. Submit() never blocks;
// Infer() is the blocking convenience wrapper. Each executor drains the
// admission queue in FIFO order, so queue wait is measurable and fair.
#ifndef LCE_SERVING_SERVER_H_
#define LCE_SERVING_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/cancellation.h"
#include "core/status.h"
#include "graph/compiled_model.h"
#include "serving/batch_scheduler.h"
#include "serving/context_pool.h"
#include "serving/flight_recorder.h"
#include "telemetry/metrics.h"

namespace lce::serving {

struct ServerOptions {
  // Requests waiting for an executor beyond this bound are shed with
  // ResourceExhausted at Submit() time.
  int max_queue_depth = 64;
  // Concurrent executions; also the executor-thread count and the context
  // pool capacity (arenas resident = max_inflight, independent of load).
  int max_inflight = 2;
  // Deadline budget applied to requests submitted without one. Zero
  // disables the default (requests without an explicit deadline never
  // expire).
  std::chrono::nanoseconds default_deadline{0};
  // Dynamic batching (docs/SERVING.md, "Batching semantics"). Up to
  // max_batch_size queued requests execute as one batch-N Invoke; the
  // server compiles one weight-sharing batch variant per size in
  // [2, max_batch_size] at construction (LCE_CHECK-fails for a model that
  // cannot be batched). 1 = unbatched, the exact pre-batching behavior.
  int max_batch_size = 1;
  // How long the oldest queued request may wait for more lanes before its
  // batch closes anyway; the scheduler additionally closes early so no
  // member misses its deadline waiting (see serving/batch_scheduler.h).
  // Zero = opportunistic batching (batch whatever is queued, never wait).
  std::chrono::nanoseconds batch_timeout{0};
  // Multi-resolution serving: square input resolutions to pre-compile as
  // shape buckets at construction (each with its own batch variants up to
  // max_batch_size). The base model's own resolution is always served;
  // resolutions already registered on the model (CompileOptions::
  // input_resolutions) are picked up automatically. An inadmissible entry
  // is a configuration error, caught at construction.
  std::vector<int> input_resolutions;
  // Whether a shaped Submit for a resolution with no pre-built bucket may
  // compile one on the fly (bounded by ResourceLimits::max_shape_buckets).
  // When false, unseen resolutions are rejected with InvalidArgument --
  // the fixed-latency-budget configuration: no request ever pays a
  // compile.
  bool lazy_shape_compile = true;
  // Per-context execution options (profiling, observer).
  ExecutionOptions execution;
  // Periodic stats export (docs/OBSERVABILITY.md): every interval a
  // background thread writes StatsSnapshot().ToJson() to
  // `stats_export_path`. Zero interval (the default) starts no thread.
  std::chrono::nanoseconds stats_export_interval{0};
  std::string stats_export_path;
  // Flight recorder configuration (ring capacity, dump path, burst
  // triggers); see serving/flight_recorder.h. The ring always records;
  // bundles are dumped only when a dump path is configured (directly or
  // via LCE_FLIGHT_RECORDER).
  FlightRecorderOptions flight_recorder;
};

// One server's lifetime counters and latency distributions, read atomically
// enough for monitoring (counters are relaxed loads; the histograms are
// registry snapshots shared by every server in the process).
//
// The outcome classification is exact, not best-effort -- these invariants
// hold whenever the server is idle (no queued or in-flight requests), and
// tests enforce them:
//
//   submitted == shed + expired_in_queue + cancelled_in_queue + admitted
//   admitted  == completed_ok + deadline_exceeded + cancelled + failed
//
// `shed` counts refusals (admission queue full, shutdown, context-arena
// allocation failure); `expired_in_queue` / `cancelled_in_queue` count
// requests whose token fired before they ever touched a context (shutdown
// drains count as cancelled_in_queue; a deadline already negative at
// Submit counts as expired_in_queue); the admitted outcomes classify the
// Invoke status, with `failed` covering kernel errors *and* post-admission
// resource exhaustion (scratch allocation failure mid-model).
struct ServerStats {
  std::int64_t submitted = 0;
  std::int64_t shed = 0;
  std::int64_t expired_in_queue = 0;
  std::int64_t cancelled_in_queue = 0;
  std::int64_t admitted = 0;
  std::int64_t completed_ok = 0;
  std::int64_t deadline_exceeded = 0;
  std::int64_t cancelled = 0;
  std::int64_t failed = 0;
  std::int64_t quarantined = 0;  // contexts destroyed after failed runs
  // Batch-N Invokes this server ran (each covers >= 1 admitted lanes;
  // sum(batch_occupancy) over this server's batches == lanes executed).
  std::int64_t batches_executed = 0;
  // Shaped submits refused because their resolution could not be bucketed
  // (inadmissible shape, bucket cap, or lazy compile disabled). A subset of
  // `shed` -- the invariants above already cover these.
  std::int64_t shape_rejected = 0;
  // Shape buckets this server can currently route to (base included).
  int shape_buckets = 0;
  int queue_depth = 0;
  int queue_depth_peak = 0;
  std::int64_t next_request_id = 0;  // ids assigned so far + 1

  // Process-wide latency distributions (serving.queue_wait_ns,
  // serving.execute_ns, serving.e2e_ns) at snapshot time.
  telemetry::HistogramSnapshot queue_wait;
  telemetry::HistogramSnapshot execute;
  telemetry::HistogramSnapshot e2e;
  // Lanes per executed batch (serving.batch_occupancy): count equals the
  // process-wide batches_executed; mean is the achieved occupancy.
  telemetry::HistogramSnapshot batch_occupancy;

  std::string ToJson() const;
};

// Handle to one submitted request. Thread-safe; shared by the submitter
// and the executor.
class Request {
 public:
  // Requests the request's cooperative cancellation: pending requests
  // complete with kCancelled without executing; an in-flight one stops at
  // its next cancellation point.
  void Cancel() { token_.Cancel(); }

  // Blocks until the request reaches a terminal state; returns its status.
  // By value, deliberately: callers commonly write
  // `server.Submit(...)->Wait()`, and a reference into the request would
  // dangle the moment that temporary shared_ptr releases the last
  // reference. (Same rule for status() below -- no accessor on this class
  // returns a reference into request state.)
  Status Wait();

  bool done() const;
  // Terminal status; meaningful once done() (Ok until then).
  Status status() const;

  // Time spent waiting for an executor, and executing (fill + Invoke +
  // consume). Meaningful once done(); 0 for phases never entered.
  std::int64_t queue_wait_ns() const { return queue_wait_ns_; }
  std::int64_t exec_ns() const { return exec_ns_; }

  // Server-assigned id: monotonically increasing per server, starting at 1,
  // assigned at Submit. All tracer spans this request produces (queue_wait,
  // execute, invoke, per-node) carry it as their "req" argument, and its
  // RequestSummary in the flight recorder uses the same id.
  std::int64_t id() const { return id_; }

  // The request's cancellation token. This IS a reference into request
  // state (tokens are identity objects and cannot be returned by value):
  // keep a shared_ptr<Request> alive for as long as the reference is held.
  // `Submit(...)->token().Cancel()` is safe (the temporary outlives the
  // full expression); storing the reference past that is not.
  CancellationToken& token() { return token_; }

 private:
  friend class Server;

  using FillFn = std::function<void(ExecutionContext&)>;
  using DoneFn = std::function<void(const Status&, ExecutionContext*)>;

  void Complete(Status status);

  CancellationToken token_;
  FillFn fill_;
  DoneFn done_fn_;
  std::int64_t id_ = 0;
  std::uint64_t enqueue_ns_ = 0;
  std::uint64_t dequeue_ns_ = 0;
  std::int64_t queue_wait_ns_ = 0;
  std::int64_t exec_ns_ = 0;
  int queue_depth_at_admit_ = 0;
  int nodes_executed_ = 0;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  Status status_;
};

class Server {
 public:
  using FillFn = Request::FillFn;
  using DoneFn = Request::DoneFn;

  Server(std::shared_ptr<const CompiledModel> model, ServerOptions options);
  // Drains: pending requests complete with kCancelled("server shutting
  // down"); executors finish their current request and join.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Admission-controlled asynchronous submission; never blocks.
  //   `fill`     runs on an executor thread with the request's context,
  //              before Invoke; write the input tensors here.
  //   `done`     (optional) runs on the executor with the terminal status;
  //              the context pointer is non-null only on Ok -- read the
  //              output tensors there, before the context returns to the
  //              pool.
  //   `deadline` latency budget measured from Submit; 0 (unset) applies
  //              ServerOptions::default_deadline, while a *negative*
  //              budget is already exhausted -- the request completes
  //              immediately with kDeadlineExceeded, it is NOT silently
  //              upgraded to the default.
  // The returned handle is already terminal (ResourceExhausted) when the
  // request was shed at admission.
  std::shared_ptr<Request> Submit(
      FillFn fill, DoneFn done = nullptr,
      std::chrono::nanoseconds deadline = std::chrono::nanoseconds{0});

  // Shaped submission (multi-resolution serving): routes the request to the
  // shape bucket for square resolution `input_hw`; `fill` then sees a
  // context whose input tensor is [1, input_hw, input_hw, C]. 0 means the
  // base bucket (identical to the unshaped overload). An unseen resolution
  // is compiled on first use when ServerOptions::lazy_shape_compile allows,
  // otherwise -- or when the resolution is inadmissible or the bucket cap
  // is reached -- the returned handle is already terminal with the
  // rejection status.
  std::shared_ptr<Request> Submit(
      int input_hw, FillFn fill, DoneFn done = nullptr,
      std::chrono::nanoseconds deadline = std::chrono::nanoseconds{0});

  // Blocking convenience wrapper: Submit + Wait. `consume` (optional) reads
  // the outputs on the executor thread when the request succeeds.
  Status Infer(FillFn fill, FillFn consume = nullptr,
               std::chrono::nanoseconds deadline = std::chrono::nanoseconds{0});
  // Shaped blocking wrapper; see the shaped Submit.
  Status Infer(int input_hw, FillFn fill, FillFn consume = nullptr,
               std::chrono::nanoseconds deadline = std::chrono::nanoseconds{0});

  // Requests currently waiting for an executor.
  int queue_depth() const;
  const ContextPool& context_pool() const { return pool_; }

  // Point-in-time view of this server's counters plus the process-wide
  // serving latency histograms. Always callable, including while requests
  // are in flight (the counters may then be mid-transition; the documented
  // invariants hold at idle).
  ServerStats StatsSnapshot() const;

  // The failure flight recorder (ring of recent request summaries; bundles
  // on anomaly). Exposed for tests and capture tools.
  FlightRecorder& flight_recorder() { return recorder_; }

 private:
  // Compiles the startup model set: every shape bucket (the base, buckets
  // already on the model's registry, and ServerOptions::input_resolutions)
  // with its weight-sharing batch variants [2, max_batch_size]
  // (LCE_CHECK-fails for an unbatchable model or an inadmissible
  // configured resolution).
  static std::vector<std::shared_ptr<const CompiledModel>> BuildModelSet(
      const std::shared_ptr<const CompiledModel>& model,
      const ServerOptions& options);
  static BatchScheduler::Options SchedulerOptions(const ServerOptions& options);

  // Maps `input_hw` to its bucket's shape key, compiling and registering
  // the bucket (and its batch variants) on first use when allowed. The
  // rejection status is the submit-time answer for unservable resolutions.
  Status ResolveShapeBucket(int input_hw, int* shape_key);

  void ExecutorLoop();
  // One closed batch: queue-wait bookkeeping + expired-lane filtering,
  // scatter / batch Invoke / gather, per-lane outcome classification.
  void ExecuteBatch(std::vector<BatchItem> batch);
  void ExporterLoop();
  // Terminal bookkeeping shared by every completion path. `dequeued` is
  // false for requests refused before entering the queue.
  void Finish(const std::shared_ptr<Request>& req, Status status,
              ExecutionContext* ctx, bool admitted);

  const ServerOptions options_;
  // The root model; kept for lazy shape-bucket compilation (buckets
  // register on its registry and share its packed weights).
  const std::shared_ptr<const CompiledModel> base_model_;
  ContextPool pool_;
  FlightRecorder recorder_;
  // Owns the admission queue; executors block in scheduler_.NextBatch().
  BatchScheduler scheduler_;

  std::vector<std::thread> executors_;

  // Buckets this server can already route to (their batch variants are in
  // the pool). A resolution absent here on a shaped Submit takes the lazy
  // compile path; concurrent first requests may both compile (the model's
  // registry dedups the bucket, the pool dedups registration) but register
  // once.
  mutable std::mutex shape_mu_;
  std::vector<int> registered_buckets_;

  // Stats exporter thread state (separate mutex: the exporter must never
  // contend with the admission path).
  std::mutex exporter_mu_;
  std::condition_variable exporter_cv_;
  bool exporter_stop_ = false;
  std::thread exporter_;

  // Request identity + per-server outcome counters (see ServerStats).
  std::atomic<std::int64_t> next_request_id_{1};
  std::atomic<std::int64_t> submitted_{0};
  std::atomic<std::int64_t> shed_{0};
  std::atomic<std::int64_t> expired_in_queue_{0};
  std::atomic<std::int64_t> cancelled_in_queue_{0};
  std::atomic<std::int64_t> admitted_{0};
  std::atomic<std::int64_t> completed_ok_{0};
  std::atomic<std::int64_t> deadline_exceeded_{0};
  std::atomic<std::int64_t> cancelled_{0};
  std::atomic<std::int64_t> failed_{0};
  std::atomic<std::int64_t> batches_executed_{0};
  std::atomic<std::int64_t> shape_rejected_{0};
  std::atomic<int> queue_depth_peak_{0};
};

}  // namespace lce::serving

#endif  // LCE_SERVING_SERVER_H_
