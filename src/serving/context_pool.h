// ExecutionContext pool with reuse, reset-on-return and quarantine
// (docs/SERVING.md).
//
// Arenas are the per-request cost of the CompiledModel/ExecutionContext
// split; a server that allocated one per request would pay an
// arena-sized malloc+free on every inference and make
// `serving.resident_arena_bytes` churn with load. The pool keeps up to
// `capacity` contexts alive and hands them out one request at a time:
//
//   * Acquire()  -- reuse a pooled context, or lazily create one while
//                   under capacity. All `capacity` contexts checked out =>
//                   Status::ResourceExhausted (the server sizes capacity to
//                   its in-flight limit, so this is a hard invariant rather
//                   than a wait).
//   * Release()  -- with an Ok (or never-ran) request: Reset() the context
//                   (arena zeroed, profile cleared) and return it to the
//                   free list, so the next request sees a state
//                   bit-identical to a fresh context.
//                   with a failed Invoke: QUARANTINE. A run that ended
//                   mid-model (cancellation, induced kernel error, scratch
//                   exhaustion) leaves unspecified bytes in the arena and
//                   the gemm scratch; the context is destroyed, never
//                   reused, and its slot is replenished lazily by a later
//                   Acquire. `serving.pool.quarantined_total` counts these.
//
// BATCH VARIANTS. The pool can serve several sibling CompiledModels at
// once -- one per batch size, sharing packed weights (see
// CompiledModel::CompileBatchVariant). Acquire(batch) hands out a context
// for the variant with that batch. The `capacity` bound covers contexts
// of *all* variants together: checked-out plus parked contexts never
// exceed capacity, so resident arena bytes stay bounded by
// capacity * max-variant-arena regardless of how batch sizes mix. When
// the bound forces it, an idle context of another batch size is evicted
// (destroyed, `serving.pool.evicted_total`) to make room -- the pool
// adapts its resident mix to the batch sizes actually being served.
#ifndef LCE_SERVING_CONTEXT_POOL_H_
#define LCE_SERVING_CONTEXT_POOL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/status.h"
#include "graph/compiled_model.h"

namespace lce::serving {

class ContextPool {
 public:
  // Single-model pool: every Acquire targets `model` (batch-1 serving).
  ContextPool(std::shared_ptr<const CompiledModel> model, int capacity,
              ExecutionOptions options = {});
  // Multi-variant pool: `models[i]` are sibling compilations of one model
  // at distinct batch sizes (each non-null, batches unique). Acquire(batch)
  // selects by CompiledModel::batch().
  ContextPool(std::vector<std::shared_ptr<const CompiledModel>> models,
              int capacity, ExecutionOptions options = {});

  ContextPool(const ContextPool&) = delete;
  ContextPool& operator=(const ContextPool&) = delete;

  // Hands out a batch-1 context for exactly one request. Fails with
  // ResourceExhausted when every slot is checked out or when a replacement
  // context's arena allocation fails (in which case nothing is leaked and a
  // later Acquire retries the allocation).
  Status Acquire(std::unique_ptr<ExecutionContext>* out);
  // Same, for the variant serving `batch` lanes. InvalidArgument when no
  // variant with that batch size was registered.
  Status Acquire(int batch, std::unique_ptr<ExecutionContext>* out);

  // Returns a context after a request. `invoke_status` is the request's
  // Invoke status -- Status::Ok() for a request that never invoked. The
  // context goes back to its own variant's free list.
  void Release(std::unique_ptr<ExecutionContext> ctx,
               const Status& invoke_status);

  int capacity() const { return capacity_; }
  // Contexts currently checked out to requests (all variants).
  int outstanding() const;
  // Contexts parked in the free lists (reused without allocation).
  int pooled() const;
  // Contexts this pool destroyed after failed runs (the per-pool view of
  // the process-wide serving.pool.quarantined_total counter; feeds
  // ServerStats::quarantined).
  std::int64_t quarantined() const;
  // Idle contexts destroyed to make room for a different batch size.
  std::int64_t evicted() const;

 private:
  // Index into models_/free_ for the variant with this batch, or -1.
  int VariantIndex(int batch) const;

  const std::vector<std::shared_ptr<const CompiledModel>> models_;
  const int capacity_;
  const ExecutionOptions options_;

  mutable std::mutex mu_;
  // free_[i] parks idle contexts of models_[i].
  std::vector<std::vector<std::unique_ptr<ExecutionContext>>> free_;
  int outstanding_ = 0;
  std::int64_t quarantined_ = 0;
  std::int64_t evicted_ = 0;
};

}  // namespace lce::serving

#endif  // LCE_SERVING_CONTEXT_POOL_H_
