// ExecutionContext pool with reuse, reset-on-return and quarantine
// (docs/SERVING.md).
//
// Arenas are the per-request cost of the CompiledModel/ExecutionContext
// split; a server that allocated one per request would pay an
// arena-sized malloc+free on every inference and make
// `serving.resident_arena_bytes` churn with load. The pool keeps up to
// `capacity` contexts alive and hands them out one request at a time:
//
//   * Acquire()  -- reuse a pooled context, or lazily create one while
//                   under capacity. All `capacity` contexts checked out =>
//                   Status::ResourceExhausted (the server sizes capacity to
//                   its in-flight limit, so this is a hard invariant rather
//                   than a wait).
//   * Release()  -- with an Ok (or never-ran) request: Reset() the context
//                   (arena zeroed, profile cleared) and return it to the
//                   free list, so the next request sees a state
//                   bit-identical to a fresh context.
//                   with a failed Invoke: QUARANTINE. A run that ended
//                   mid-model (cancellation, induced kernel error, scratch
//                   exhaustion) leaves unspecified bytes in the arena and
//                   the gemm scratch; the context is destroyed, never
//                   reused, and its slot is replenished lazily by a later
//                   Acquire. `serving.pool.quarantined_total` counts these.
#ifndef LCE_SERVING_CONTEXT_POOL_H_
#define LCE_SERVING_CONTEXT_POOL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/status.h"
#include "graph/compiled_model.h"

namespace lce::serving {

class ContextPool {
 public:
  ContextPool(std::shared_ptr<const CompiledModel> model, int capacity,
              ExecutionOptions options = {});

  ContextPool(const ContextPool&) = delete;
  ContextPool& operator=(const ContextPool&) = delete;

  // Hands out a context for exactly one request. Fails with
  // ResourceExhausted when every slot is checked out or when a replacement
  // context's arena allocation fails (in which case nothing is leaked and a
  // later Acquire retries the allocation).
  Status Acquire(std::unique_ptr<ExecutionContext>* out);

  // Returns a context after a request. `invoke_status` is the request's
  // Invoke status -- Status::Ok() for a request that never invoked.
  void Release(std::unique_ptr<ExecutionContext> ctx,
               const Status& invoke_status);

  int capacity() const { return capacity_; }
  // Contexts currently checked out to requests.
  int outstanding() const;
  // Contexts parked in the free list (reused without allocation).
  int pooled() const;
  // Contexts this pool destroyed after failed runs (the per-pool view of
  // the process-wide serving.pool.quarantined_total counter; feeds
  // ServerStats::quarantined).
  std::int64_t quarantined() const;

 private:
  const std::shared_ptr<const CompiledModel> model_;
  const int capacity_;
  const ExecutionOptions options_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ExecutionContext>> free_;
  int outstanding_ = 0;
  std::int64_t quarantined_ = 0;
};

}  // namespace lce::serving

#endif  // LCE_SERVING_CONTEXT_POOL_H_
