// ExecutionContext pool with reuse, reset-on-return and quarantine
// (docs/SERVING.md).
//
// Arenas are the per-request cost of the CompiledModel/ExecutionContext
// split; a server that allocated one per request would pay an
// arena-sized malloc+free on every inference and make
// `serving.resident_arena_bytes` churn with load. The pool keeps up to
// `capacity` contexts alive and hands them out one request at a time:
//
//   * Acquire()  -- reuse a pooled context, or lazily create one while
//                   under capacity. All `capacity` contexts checked out =>
//                   Status::ResourceExhausted (the server sizes capacity to
//                   its in-flight limit, so this is a hard invariant rather
//                   than a wait).
//   * Release()  -- with an Ok (or never-ran) request: Reset() the context
//                   (arena zeroed, profile cleared) and return it to the
//                   free list, so the next request sees a state
//                   bit-identical to a fresh context.
//                   with a failed Invoke: QUARANTINE. A run that ended
//                   mid-model (cancellation, induced kernel error, scratch
//                   exhaustion) leaves unspecified bytes in the arena and
//                   the gemm scratch; the context is destroyed, never
//                   reused, and its slot is replenished lazily by a later
//                   Acquire. `serving.pool.quarantined_total` counts these.
//
// VARIANTS. The pool can serve several sibling CompiledModels at once,
// sharing one set of packed weights: batch variants
// (CompiledModel::CompileBatchVariant) and shape buckets
// (CompiledModel::CompileShapeVariant) in any combination. Each registered
// model is keyed by (shape bucket, batch) -- Acquire(shape_hw, batch)
// selects by that pair, so a context's arena always matches both the
// resolution and the lane count of the work it receives; batch-size-only
// lookup would hand a 96 px request a 224 px arena the moment two buckets
// share a batch size. Release() resolves the variant by model identity,
// which stays correct however many key dimensions variants grow.
//
// The `capacity` bound covers contexts of *all* variants together:
// checked-out plus parked contexts never exceed capacity, so resident
// arena bytes stay bounded by capacity * max-variant-arena regardless of
// how resolutions and batch sizes mix. When the bound forces it, an idle
// context of another variant is evicted (destroyed,
// `serving.pool.evicted_total`) to make room -- the pool adapts its
// resident mix to the traffic actually being served, which is what
// realizes the cross-bucket arena high-water reuse that
// PlanCrossBucketArena accounts for.
#ifndef LCE_SERVING_CONTEXT_POOL_H_
#define LCE_SERVING_CONTEXT_POOL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/status.h"
#include "graph/compiled_model.h"

namespace lce::serving {

class ContextPool {
 public:
  // Single-model pool: every Acquire targets `model` (batch-1 serving).
  ContextPool(std::shared_ptr<const CompiledModel> model, int capacity,
              ExecutionOptions options = {});
  // Multi-variant pool: `models[i]` are sibling compilations of one model
  // (each non-null, (shape bucket, batch) pairs unique). Acquire selects by
  // CompiledModel::shape_bucket_hw() and CompiledModel::batch().
  ContextPool(std::vector<std::shared_ptr<const CompiledModel>> models,
              int capacity, ExecutionOptions options = {});

  ContextPool(const ContextPool&) = delete;
  ContextPool& operator=(const ContextPool&) = delete;

  // Registers additional sibling variants after construction (lazy shape
  // buckets: the server compiles a bucket on first request for an unseen
  // resolution, then registers its batch variants here). Models whose
  // (shape bucket, batch) key is already registered are ignored. Does not
  // change `capacity`; the new variants compete for the same slots.
  void AddModels(std::vector<std::shared_ptr<const CompiledModel>> models);

  // Hands out a context for the first registered model (batch-1 serving).
  // Fails with ResourceExhausted when every slot is checked out or when a
  // replacement context's arena allocation fails (in which case nothing is
  // leaked and a later Acquire retries the allocation).
  Status Acquire(std::unique_ptr<ExecutionContext>* out);
  // Same, for the variant serving `batch` lanes in the first registered
  // model's shape bucket (pre-shape-bucket call sites).
  Status Acquire(int batch, std::unique_ptr<ExecutionContext>* out);
  // Same, for the variant serving `batch` lanes at resolution `shape_hw`.
  // InvalidArgument when no variant with that (shape bucket, batch) key was
  // registered -- a variant miss is an error, never a silently-wrong arena.
  Status Acquire(int shape_hw, int batch,
                 std::unique_ptr<ExecutionContext>* out);

  // Returns a context after a request. `invoke_status` is the request's
  // Invoke status -- Status::Ok() for a request that never invoked. The
  // context goes back to its own variant's free list (resolved by model
  // identity).
  void Release(std::unique_ptr<ExecutionContext> ctx,
               const Status& invoke_status);

  int capacity() const { return capacity_; }
  // Contexts currently checked out to requests (all variants).
  int outstanding() const;
  // Contexts parked in the free lists (reused without allocation).
  int pooled() const;
  // Contexts this pool destroyed after failed runs (the per-pool view of
  // the process-wide serving.pool.quarantined_total counter; feeds
  // ServerStats::quarantined).
  std::int64_t quarantined() const;
  // Idle contexts destroyed to make room for a different variant.
  std::int64_t evicted() const;

 private:
  // Index into models_/free_ for the (shape bucket, batch) key, or -1.
  // Caller holds mu_.
  int VariantIndexLocked(int shape_hw, int batch) const;
  // Index of the variant `model` itself, or -1. Caller holds mu_.
  int ModelIndexLocked(const CompiledModel* model) const;

  const int capacity_;
  const ExecutionOptions options_;

  mutable std::mutex mu_;
  // Registered variants; grows via AddModels, never shrinks (free_ stays
  // index-aligned).
  std::vector<std::shared_ptr<const CompiledModel>> models_;
  // free_[i] parks idle contexts of models_[i].
  std::vector<std::vector<std::unique_ptr<ExecutionContext>>> free_;
  int outstanding_ = 0;
  std::int64_t quarantined_ = 0;
  std::int64_t evicted_ = 0;
};

}  // namespace lce::serving

#endif  // LCE_SERVING_CONTEXT_POOL_H_
