#include "serving/context_pool.h"

#include <string>
#include <utility>

#include "core/macros.h"
#include "telemetry/metrics.h"

namespace lce::serving {
namespace {

telemetry::Metric* ReusedTotal() {
  static telemetry::Metric* m =
      telemetry::MetricsRegistry::Global().Counter("serving.pool.reused_total");
  return m;
}

telemetry::Metric* CreatedTotal() {
  static telemetry::Metric* m = telemetry::MetricsRegistry::Global().Counter(
      "serving.pool.created_total");
  return m;
}

telemetry::Metric* QuarantinedTotal() {
  static telemetry::Metric* m = telemetry::MetricsRegistry::Global().Counter(
      "serving.pool.quarantined_total");
  return m;
}

telemetry::Metric* EvictedTotal() {
  static telemetry::Metric* m = telemetry::MetricsRegistry::Global().Counter(
      "serving.pool.evicted_total");
  return m;
}

std::vector<std::shared_ptr<const CompiledModel>> SingleModelVector(
    std::shared_ptr<const CompiledModel> model) {
  std::vector<std::shared_ptr<const CompiledModel>> models;
  models.push_back(std::move(model));
  return models;
}

}  // namespace

ContextPool::ContextPool(std::shared_ptr<const CompiledModel> model,
                         int capacity, ExecutionOptions options)
    : ContextPool(SingleModelVector(std::move(model)), capacity,
                  std::move(options)) {}

ContextPool::ContextPool(
    std::vector<std::shared_ptr<const CompiledModel>> models, int capacity,
    ExecutionOptions options)
    : models_(std::move(models)),
      capacity_(capacity),
      options_(std::move(options)) {
  LCE_CHECK(!models_.empty() && "ContextPool requires at least one model");
  for (std::size_t i = 0; i < models_.size(); ++i) {
    LCE_CHECK(models_[i] != nullptr && "ContextPool requires compiled models");
    for (std::size_t j = 0; j < i; ++j) {
      LCE_CHECK(models_[i]->batch() != models_[j]->batch() &&
                "duplicate batch size among pool models");
    }
  }
  LCE_CHECK_GT(capacity_, 0);
  free_.resize(models_.size());
}

int ContextPool::VariantIndex(int batch) const {
  for (std::size_t i = 0; i < models_.size(); ++i) {
    if (models_[i]->batch() == batch) return static_cast<int>(i);
  }
  return -1;
}

Status ContextPool::Acquire(std::unique_ptr<ExecutionContext>* out) {
  return Acquire(models_.front()->batch(), out);
}

Status ContextPool::Acquire(int batch, std::unique_ptr<ExecutionContext>* out) {
  LCE_CHECK(out != nullptr);
  const int idx = VariantIndex(batch);
  if (idx < 0) {
    return Status::InvalidArgument("no compiled variant for batch " +
                                   std::to_string(batch));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& free_list = free_[static_cast<std::size_t>(idx)];
    if (!free_list.empty()) {
      *out = std::move(free_list.back());
      free_list.pop_back();
      ++outstanding_;
      ReusedTotal()->Add(1);
      return Status::Ok();
    }
    if (outstanding_ >= capacity_) {
      return Status::ResourceExhausted("context pool exhausted (" +
                                       std::to_string(capacity_) +
                                       " contexts checked out)");
    }
    // The capacity bound covers parked contexts too (resident arenas ==
    // outstanding + pooled <= capacity). When every idle slot is parked
    // under a different batch size, evict one: the arena mix follows the
    // batch sizes actually being requested.
    int resident = outstanding_;
    for (const auto& fl : free_) resident += static_cast<int>(fl.size());
    if (resident >= capacity_) {
      for (auto& fl : free_) {
        if (!fl.empty()) {
          fl.pop_back();  // destroys the context (unique_ptr)
          ++evicted_;
          EvictedTotal()->Add(1);
          break;
        }
      }
    }
    ++outstanding_;  // reserve the slot while constructing outside the lock
  }
  // Construction (one arena allocation) happens outside the pool lock so a
  // slow or failing allocation never blocks concurrent Release/Acquire.
  auto ctx = std::make_unique<ExecutionContext>(
      models_[static_cast<std::size_t>(idx)], options_);
  if (!ctx->allocation_ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    --outstanding_;
    return Status::ResourceExhausted(
        "execution context arena allocation failed");
  }
  CreatedTotal()->Add(1);
  *out = std::move(ctx);
  return Status::Ok();
}

void ContextPool::Release(std::unique_ptr<ExecutionContext> ctx,
                          const Status& invoke_status) {
  LCE_CHECK(ctx != nullptr);
  const int idx = VariantIndex(ctx->model().batch());
  LCE_CHECK(idx >= 0 && "released context does not belong to this pool");
  bool quarantine = false;
  if (!invoke_status.ok()) {
    // Poisoned run: the arena (and possibly the gemm scratch) holds the
    // partial state of an aborted execution. Never reuse it -- destroy the
    // context; a later Acquire builds a replacement from scratch.
    QuarantinedTotal()->Add(1);
    quarantine = true;
    ctx.reset();
  } else {
    // Reset-on-return: zeroed arena + cleared profile makes the pooled
    // context bit-identical (as observable state) to a fresh one.
    ctx->Reset();
  }
  std::lock_guard<std::mutex> lock(mu_);
  --outstanding_;
  LCE_CHECK_GE(outstanding_, 0);
  if (quarantine) ++quarantined_;
  if (ctx != nullptr) {
    free_[static_cast<std::size_t>(idx)].push_back(std::move(ctx));
  }
}

std::int64_t ContextPool::quarantined() const {
  std::lock_guard<std::mutex> lock(mu_);
  return quarantined_;
}

std::int64_t ContextPool::evicted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evicted_;
}

int ContextPool::outstanding() const {
  std::lock_guard<std::mutex> lock(mu_);
  return outstanding_;
}

int ContextPool::pooled() const {
  std::lock_guard<std::mutex> lock(mu_);
  int n = 0;
  for (const auto& fl : free_) n += static_cast<int>(fl.size());
  return n;
}

}  // namespace lce::serving
