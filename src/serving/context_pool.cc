#include "serving/context_pool.h"

#include <utility>

#include "core/macros.h"
#include "telemetry/metrics.h"

namespace lce::serving {
namespace {

telemetry::Metric* ReusedTotal() {
  static telemetry::Metric* m =
      telemetry::MetricsRegistry::Global().Counter("serving.pool.reused_total");
  return m;
}

telemetry::Metric* CreatedTotal() {
  static telemetry::Metric* m = telemetry::MetricsRegistry::Global().Counter(
      "serving.pool.created_total");
  return m;
}

telemetry::Metric* QuarantinedTotal() {
  static telemetry::Metric* m = telemetry::MetricsRegistry::Global().Counter(
      "serving.pool.quarantined_total");
  return m;
}

}  // namespace

ContextPool::ContextPool(std::shared_ptr<const CompiledModel> model,
                         int capacity, ExecutionOptions options)
    : model_(std::move(model)),
      capacity_(capacity),
      options_(std::move(options)) {
  LCE_CHECK(model_ != nullptr && "ContextPool requires a compiled model");
  LCE_CHECK_GT(capacity_, 0);
}

Status ContextPool::Acquire(std::unique_ptr<ExecutionContext>* out) {
  LCE_CHECK(out != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      *out = std::move(free_.back());
      free_.pop_back();
      ++outstanding_;
      ReusedTotal()->Add(1);
      return Status::Ok();
    }
    if (outstanding_ >= capacity_) {
      return Status::ResourceExhausted("context pool exhausted (" +
                                       std::to_string(capacity_) +
                                       " contexts checked out)");
    }
    ++outstanding_;  // reserve the slot while constructing outside the lock
  }
  // Construction (one arena allocation) happens outside the pool lock so a
  // slow or failing allocation never blocks concurrent Release/Acquire.
  auto ctx = std::make_unique<ExecutionContext>(model_, options_);
  if (!ctx->allocation_ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    --outstanding_;
    return Status::ResourceExhausted(
        "execution context arena allocation failed");
  }
  CreatedTotal()->Add(1);
  *out = std::move(ctx);
  return Status::Ok();
}

void ContextPool::Release(std::unique_ptr<ExecutionContext> ctx,
                          const Status& invoke_status) {
  LCE_CHECK(ctx != nullptr);
  bool quarantine = false;
  if (!invoke_status.ok()) {
    // Poisoned run: the arena (and possibly the gemm scratch) holds the
    // partial state of an aborted execution. Never reuse it -- destroy the
    // context; a later Acquire builds a replacement from scratch.
    QuarantinedTotal()->Add(1);
    quarantine = true;
    ctx.reset();
  } else {
    // Reset-on-return: zeroed arena + cleared profile makes the pooled
    // context bit-identical (as observable state) to a fresh one.
    ctx->Reset();
  }
  std::lock_guard<std::mutex> lock(mu_);
  --outstanding_;
  LCE_CHECK_GE(outstanding_, 0);
  if (quarantine) ++quarantined_;
  if (ctx != nullptr) free_.push_back(std::move(ctx));
}

std::int64_t ContextPool::quarantined() const {
  std::lock_guard<std::mutex> lock(mu_);
  return quarantined_;
}

int ContextPool::outstanding() const {
  std::lock_guard<std::mutex> lock(mu_);
  return outstanding_;
}

int ContextPool::pooled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(free_.size());
}

}  // namespace lce::serving
