#include "serving/context_pool.h"

#include <string>
#include <utility>

#include "core/macros.h"
#include "telemetry/metrics.h"

namespace lce::serving {
namespace {

telemetry::Metric* ReusedTotal() {
  static telemetry::Metric* m =
      telemetry::MetricsRegistry::Global().Counter("serving.pool.reused_total");
  return m;
}

telemetry::Metric* CreatedTotal() {
  static telemetry::Metric* m = telemetry::MetricsRegistry::Global().Counter(
      "serving.pool.created_total");
  return m;
}

telemetry::Metric* QuarantinedTotal() {
  static telemetry::Metric* m = telemetry::MetricsRegistry::Global().Counter(
      "serving.pool.quarantined_total");
  return m;
}

telemetry::Metric* EvictedTotal() {
  static telemetry::Metric* m = telemetry::MetricsRegistry::Global().Counter(
      "serving.pool.evicted_total");
  return m;
}

std::vector<std::shared_ptr<const CompiledModel>> SingleModelVector(
    std::shared_ptr<const CompiledModel> model) {
  std::vector<std::shared_ptr<const CompiledModel>> models;
  models.push_back(std::move(model));
  return models;
}

}  // namespace

ContextPool::ContextPool(std::shared_ptr<const CompiledModel> model,
                         int capacity, ExecutionOptions options)
    : ContextPool(SingleModelVector(std::move(model)), capacity,
                  std::move(options)) {}

ContextPool::ContextPool(
    std::vector<std::shared_ptr<const CompiledModel>> models, int capacity,
    ExecutionOptions options)
    : capacity_(capacity), options_(std::move(options)) {
  LCE_CHECK(!models.empty() && "ContextPool requires at least one model");
  LCE_CHECK_GT(capacity_, 0);
  AddModels(std::move(models));
}

void ContextPool::AddModels(
    std::vector<std::shared_ptr<const CompiledModel>> models) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& m : models) {
    LCE_CHECK(m != nullptr && "ContextPool requires compiled models");
    if (ModelIndexLocked(m.get()) >= 0 ||
        VariantIndexLocked(m->shape_bucket_hw(), m->batch()) >= 0) {
      continue;  // key already registered
    }
    models_.push_back(std::move(m));
    free_.emplace_back();
  }
}

int ContextPool::VariantIndexLocked(int shape_hw, int batch) const {
  for (std::size_t i = 0; i < models_.size(); ++i) {
    if (models_[i]->shape_bucket_hw() == shape_hw &&
        models_[i]->batch() == batch) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int ContextPool::ModelIndexLocked(const CompiledModel* model) const {
  for (std::size_t i = 0; i < models_.size(); ++i) {
    if (models_[i].get() == model) return static_cast<int>(i);
  }
  return -1;
}

Status ContextPool::Acquire(std::unique_ptr<ExecutionContext>* out) {
  int shape_hw = 0, batch = 1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shape_hw = models_.front()->shape_bucket_hw();
    batch = models_.front()->batch();
  }
  return Acquire(shape_hw, batch, out);
}

Status ContextPool::Acquire(int batch, std::unique_ptr<ExecutionContext>* out) {
  int shape_hw = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shape_hw = models_.front()->shape_bucket_hw();
  }
  return Acquire(shape_hw, batch, out);
}

Status ContextPool::Acquire(int shape_hw, int batch,
                            std::unique_ptr<ExecutionContext>* out) {
  LCE_CHECK(out != nullptr);
  std::shared_ptr<const CompiledModel> model;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const int idx = VariantIndexLocked(shape_hw, batch);
    if (idx < 0) {
      // A miss is an InvalidArgument, never a fallback to a "close" variant:
      // handing out a context whose arena was planned for another
      // resolution or lane count would read/write through the wrong offsets.
      return Status::InvalidArgument(
          "no compiled variant for shape bucket " + std::to_string(shape_hw) +
          ", batch " + std::to_string(batch));
    }
    auto& free_list = free_[static_cast<std::size_t>(idx)];
    if (!free_list.empty()) {
      *out = std::move(free_list.back());
      free_list.pop_back();
      ++outstanding_;
      ReusedTotal()->Add(1);
      return Status::Ok();
    }
    if (outstanding_ >= capacity_) {
      return Status::ResourceExhausted("context pool exhausted (" +
                                       std::to_string(capacity_) +
                                       " contexts checked out)");
    }
    // The capacity bound covers parked contexts too (resident arenas ==
    // outstanding + pooled <= capacity). When every idle slot is parked
    // under a different variant, evict one: the arena mix follows the
    // (resolution, batch) keys actually being requested, which is what
    // keeps resident arena bytes at the cross-bucket high-water mark
    // instead of the per-bucket sum.
    int resident = outstanding_;
    for (const auto& fl : free_) resident += static_cast<int>(fl.size());
    if (resident >= capacity_) {
      for (auto& fl : free_) {
        if (!fl.empty()) {
          fl.pop_back();  // destroys the context (unique_ptr)
          ++evicted_;
          EvictedTotal()->Add(1);
          break;
        }
      }
    }
    ++outstanding_;  // reserve the slot while constructing outside the lock
    model = models_[static_cast<std::size_t>(idx)];
  }
  // Construction (one arena allocation) happens outside the pool lock so a
  // slow or failing allocation never blocks concurrent Release/Acquire.
  auto ctx = std::make_unique<ExecutionContext>(std::move(model), options_);
  if (!ctx->allocation_ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    --outstanding_;
    return Status::ResourceExhausted(
        "execution context arena allocation failed");
  }
  CreatedTotal()->Add(1);
  *out = std::move(ctx);
  return Status::Ok();
}

void ContextPool::Release(std::unique_ptr<ExecutionContext> ctx,
                          const Status& invoke_status) {
  LCE_CHECK(ctx != nullptr);
  bool quarantine = false;
  if (!invoke_status.ok()) {
    // Poisoned run: the arena (and possibly the gemm scratch) holds the
    // partial state of an aborted execution. Never reuse it -- destroy the
    // context; a later Acquire builds a replacement from scratch.
    QuarantinedTotal()->Add(1);
    quarantine = true;
  } else {
    // Reset-on-return: zeroed arena + cleared profile makes the pooled
    // context bit-identical (as observable state) to a fresh one.
    ctx->Reset();
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Resolve the owning variant by model identity, not by key: identity
  // lookup cannot be confused by variants that happen to share a key
  // dimension, so the context always returns to exactly the free list it
  // came from.
  const int idx = ModelIndexLocked(&ctx->model());
  LCE_CHECK(idx >= 0 && "released context does not belong to this pool");
  --outstanding_;
  LCE_CHECK_GE(outstanding_, 0);
  if (quarantine) {
    ++quarantined_;
    ctx.reset();
  } else {
    free_[static_cast<std::size_t>(idx)].push_back(std::move(ctx));
  }
}

std::int64_t ContextPool::quarantined() const {
  std::lock_guard<std::mutex> lock(mu_);
  return quarantined_;
}

std::int64_t ContextPool::evicted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evicted_;
}

int ContextPool::outstanding() const {
  std::lock_guard<std::mutex> lock(mu_);
  return outstanding_;
}

int ContextPool::pooled() const {
  std::lock_guard<std::mutex> lock(mu_);
  int n = 0;
  for (const auto& fl : free_) n += static_cast<int>(fl.size());
  return n;
}

}  // namespace lce::serving
