// Cache-line aligned, RAII-managed raw storage for tensors and packed
// GEMM panels.
#ifndef LCE_CORE_ALIGNED_BUFFER_H_
#define LCE_CORE_ALIGNED_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

#include "core/macros.h"

namespace lce {

inline constexpr std::size_t kDefaultAlignment = 64;  // one cache line

// Owns a block of aligned memory. Move-only.
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  // Allocation failure throws std::bad_alloc rather than aborting: arena
  // and scratch exhaustion is runtime load, not a programmer error, and the
  // serving path converts it to Status::ResourceExhausted at its catch
  // points (ExecutionContext construction and Invoke). Code with no catch
  // point keeps the old die-on-OOM behavior via std::terminate.
  explicit AlignedBuffer(std::size_t size_bytes,
                         std::size_t alignment = kDefaultAlignment)
      : size_(size_bytes) {
    if (size_bytes == 0) return;
    // Round the size up to a multiple of the alignment as required by
    // std::aligned_alloc.
    const std::size_t rounded =
        (size_bytes + alignment - 1) / alignment * alignment;
    data_ = static_cast<std::uint8_t*>(std::aligned_alloc(alignment, rounded));
    if (data_ == nullptr) throw std::bad_alloc();
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      Free();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  ~AlignedBuffer() { Free(); }

  std::uint8_t* data() { return data_; }
  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }

  void Zero() {
    if (data_ != nullptr) std::memset(data_, 0, size_);
  }

 private:
  void Free() {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }

  std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace lce

#endif  // LCE_CORE_ALIGNED_BUFFER_H_
