#include "core/random.h"

#include "core/bitpack.h"
#include "core/macros.h"

namespace lce {

void FillUniform(Tensor& t, Rng& rng, float lo, float hi) {
  LCE_CHECK(t.dtype() == DataType::kFloat32);
  float* p = t.data<float>();
  for (std::int64_t i = 0; i < t.num_elements(); ++i) p[i] = rng.Uniform(lo, hi);
}

void FillSigns(Tensor& t, Rng& rng) {
  LCE_CHECK(t.dtype() == DataType::kFloat32);
  float* p = t.data<float>();
  for (std::int64_t i = 0; i < t.num_elements(); ++i) p[i] = rng.Sign();
}

void FillInt8(Tensor& t, Rng& rng) {
  LCE_CHECK(t.dtype() == DataType::kInt8);
  std::int8_t* p = t.data<std::int8_t>();
  for (std::int64_t i = 0; i < t.num_elements(); ++i) p[i] = rng.Int8();
}

void FillBitpacked(Tensor& t, Rng& rng) {
  LCE_CHECK(t.dtype() == DataType::kBitpacked);
  const int channels = static_cast<int>(t.shape().dim(t.shape().rank() - 1));
  const int words = BitpackedWords(channels);
  const std::int64_t outer = t.num_elements() / channels;
  TBitpacked* p = t.data<TBitpacked>();
  for (std::int64_t i = 0; i < outer; ++i) {
    for (int w = 0; w < words; ++w) {
      TBitpacked bits = static_cast<TBitpacked>(rng.Next());
      // Mask out padding bits in the last word so they encode +1.0.
      const int valid = (w == words - 1 && channels % kBitpackWordSize != 0)
                            ? channels % kBitpackWordSize
                            : kBitpackWordSize;
      if (valid < kBitpackWordSize) bits &= (TBitpacked{1} << valid) - 1;
      p[i * words + w] = bits;
    }
  }
}

}  // namespace lce
