// Resource limits for the untrusted-model path.
//
// Model files are untrusted input (docs/ROBUSTNESS.md): a corrupt or hostile
// .lcem file must never make the engine crash, abort, or allocate without
// bound. These limits are threaded through the deserializer, the semantic
// validator, the memory planner and the interpreter; every size computation
// on model-derived data is overflow-checked against them before any
// allocation happens.
//
// The defaults are deliberately generous -- far above anything a real zoo
// model needs at 224x224 input -- so that legitimate models never hit them,
// while still being finite so that adversarial dimension combinations are
// rejected with Status::ResourceExhausted instead of exhausting memory.
#ifndef LCE_CORE_RESOURCE_LIMITS_H_
#define LCE_CORE_RESOURCE_LIMITS_H_

#include <cstddef>
#include <cstdint>
#include <limits>

namespace lce {

struct ResourceLimits {
  // Per-tensor caps (logical elements and storage bytes).
  std::int64_t max_tensor_elements = std::int64_t{1} << 28;  // 268M elements
  std::size_t max_tensor_bytes = std::size_t{2} << 30;       // 2 GiB

  // Total bytes of constant (weight) data in one model.
  std::size_t max_model_bytes = std::size_t{4} << 30;  // 4 GiB

  // Cap on the planned intermediate-tensor arena.
  std::size_t max_arena_bytes = std::size_t{8} << 30;  // 8 GiB

  // Worst-case im2col patch-matrix footprint of a single convolution
  // (rows * filter_volume * element_size); bounds kernel scratch space,
  // which lives outside the planned arena.
  std::size_t max_im2col_bytes = std::size_t{2} << 30;  // 2 GiB

  // Graph-structure caps.
  std::int64_t max_nodes = std::int64_t{1} << 20;
  std::int64_t max_values = std::int64_t{1} << 21;
  std::int64_t max_node_inputs = 1024;

  // Shape-polymorphic surface (docs/SERVING.md, "Multi-resolution
  // serving"). A multi-resolution CompiledModel carries one ShapeVariant
  // per resolution bucket; each bucket costs O(IR) metadata plus its own
  // arena plan, so both dimensions need caps: a hostile (or misconfigured)
  // client cycling through resolutions must not compile unbounded variants,
  // and one absurd resolution must not plan an unbounded arena (the
  // per-bucket arena is already bounded by max_arena_bytes above, which
  // applies to every variant build independently).
  std::int64_t max_shape_buckets = 8;
  // Largest admissible square input resolution for a shape bucket.
  // 4096 px is far above any zoo scenario (96-320 px) while keeping
  // indirection tables and tile plans comfortably sized.
  std::int64_t max_input_hw = 4096;

  // No limits (trusted in-process graphs); overflow checks stay active.
  static ResourceLimits Unlimited() {
    ResourceLimits l;
    l.max_tensor_elements = std::numeric_limits<std::int64_t>::max();
    l.max_tensor_bytes = std::numeric_limits<std::size_t>::max();
    l.max_model_bytes = std::numeric_limits<std::size_t>::max();
    l.max_arena_bytes = std::numeric_limits<std::size_t>::max();
    l.max_im2col_bytes = std::numeric_limits<std::size_t>::max();
    l.max_nodes = std::numeric_limits<std::int64_t>::max();
    l.max_values = std::numeric_limits<std::int64_t>::max();
    l.max_node_inputs = std::numeric_limits<std::int64_t>::max();
    l.max_shape_buckets = std::numeric_limits<std::int64_t>::max();
    l.max_input_hw = std::numeric_limits<std::int64_t>::max();
    return l;
  }
};

}  // namespace lce

#endif  // LCE_CORE_RESOURCE_LIMITS_H_
