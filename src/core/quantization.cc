#include "core/quantization.h"

#include <cmath>
#include <limits>

#include "core/macros.h"

namespace lce {

void QuantizeMultiplier(double real_multiplier, std::int32_t* quantized,
                        int* shift) {
  LCE_CHECK(real_multiplier > 0.0);
  if (real_multiplier == 0.0) {
    *quantized = 0;
    *shift = 0;
    return;
  }
  const double q = std::frexp(real_multiplier, shift);
  auto q_fixed = static_cast<std::int64_t>(std::round(q * (1LL << 31)));
  LCE_CHECK_LE(q_fixed, (1LL << 31));
  if (q_fixed == (1LL << 31)) {
    q_fixed /= 2;
    ++*shift;
  }
  LCE_CHECK_LE(q_fixed, std::numeric_limits<std::int32_t>::max());
  *quantized = static_cast<std::int32_t>(q_fixed);
}

std::int32_t MultiplyByQuantizedMultiplier(std::int32_t x,
                                           std::int32_t quantized_multiplier,
                                           int shift) {
  // Saturating rounding doubling high multiply.
  const std::int64_t prod =
      2 * static_cast<std::int64_t>(x) * static_cast<std::int64_t>(quantized_multiplier);
  auto high = static_cast<std::int32_t>((prod + (1LL << 31)) >> 32);
  // Rounding right shift by (-shift) when shift < 0; left shift otherwise.
  if (shift >= 0) {
    // The left shift can overflow for large accumulators; saturate.
    const std::int64_t shifted = static_cast<std::int64_t>(high) << shift;
    if (shifted > std::numeric_limits<std::int32_t>::max()) {
      return std::numeric_limits<std::int32_t>::max();
    }
    if (shifted < std::numeric_limits<std::int32_t>::min()) {
      return std::numeric_limits<std::int32_t>::min();
    }
    return static_cast<std::int32_t>(shifted);
  }
  const int right = -shift;
  const std::int32_t rounding = 1 << (right - 1);
  return (high + rounding) >> right;
}

}  // namespace lce
