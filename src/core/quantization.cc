#include "core/quantization.h"

#include <cmath>
#include <limits>

#include "core/macros.h"

namespace lce {

void QuantizeMultiplier(double real_multiplier, std::int32_t* quantized,
                        int* shift) {
  LCE_DCHECK(real_multiplier > 0.0);
  if (!(real_multiplier > 0.0)) {
    *quantized = 0;
    *shift = 0;
    return;
  }
  const double q = std::frexp(real_multiplier, shift);
  auto q_fixed = static_cast<std::int64_t>(std::round(q * (1LL << 31)));
  LCE_CHECK_LE(q_fixed, (1LL << 31));
  if (q_fixed == (1LL << 31)) {
    q_fixed /= 2;
    ++*shift;
  }
  LCE_CHECK_LE(q_fixed, std::numeric_limits<std::int32_t>::max());
  *quantized = static_cast<std::int32_t>(q_fixed);
}

std::int32_t MultiplyByQuantizedMultiplier(std::int32_t x,
                                           std::int32_t quantized_multiplier,
                                           int shift) {
  // Saturating rounding doubling high multiply.
  const std::int64_t prod =
      2 * static_cast<std::int64_t>(x) * static_cast<std::int64_t>(quantized_multiplier);
  auto high = static_cast<std::int32_t>((prod + (1LL << 31)) >> 32);
  // Rounding right shift by (-shift) when shift < 0; left shift otherwise.
  // Extreme shifts arise from extreme (but legal) scale ratios, so both
  // directions must stay clear of shift-count UB.
  if (shift >= 0) {
    // The left shift can overflow for large accumulators; saturate. Any
    // shift of 32+ bits saturates every nonzero value, no shift needed.
    if (shift > 31) {
      if (high == 0) return 0;
      return high > 0 ? std::numeric_limits<std::int32_t>::max()
                      : std::numeric_limits<std::int32_t>::min();
    }
    const std::int64_t shifted = static_cast<std::int64_t>(high) << shift;
    if (shifted > std::numeric_limits<std::int32_t>::max()) {
      return std::numeric_limits<std::int32_t>::max();
    }
    if (shifted < std::numeric_limits<std::int32_t>::min()) {
      return std::numeric_limits<std::int32_t>::min();
    }
    return static_cast<std::int32_t>(shifted);
  }
  const int right = -shift;
  if (right > 31) return 0;  // rounds to zero for any 32-bit value
  const std::int64_t rounding = 1LL << (right - 1);
  return static_cast<std::int32_t>(
      (static_cast<std::int64_t>(high) + rounding) >> right);
}

}  // namespace lce
