// Affine quantization parameters and helpers for the int8 path.
//
// The int8 kernels follow the standard TFLite scheme:
//   real_value = scale * (quantized_value - zero_point)
#ifndef LCE_CORE_QUANTIZATION_H_
#define LCE_CORE_QUANTIZATION_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace lce {

struct QuantParams {
  float scale = 1.0f;
  std::int32_t zero_point = 0;
};

inline std::int8_t QuantizeValue(float v, const QuantParams& q) {
  const float scaled = std::round(v / q.scale) + static_cast<float>(q.zero_point);
  // NaN-safe saturation: std::clamp passes NaN through and casting NaN (or
  // an out-of-range value) to int is UB, which corrupt model data can
  // otherwise reach. These comparisons are false for NaN, mapping it to the
  // lower rail.
  if (scaled >= 127.0f) return 127;
  if (scaled > -128.0f) return static_cast<std::int8_t>(scaled);
  return -128;
}

inline float DequantizeValue(std::int8_t v, const QuantParams& q) {
  return q.scale * static_cast<float>(static_cast<std::int32_t>(v) - q.zero_point);
}

// Choose quantization parameters covering [min, max] (symmetric if
// `symmetric` is set, as used for weights).
inline QuantParams ChooseQuantParams(float min, float max,
                                     bool symmetric = false) {
  min = std::min(min, 0.0f);
  max = std::max(max, 0.0f);
  QuantParams q;
  if (symmetric) {
    const float bound = std::max(std::abs(min), std::abs(max));
    q.scale = bound > 0 ? bound / 127.0f : 1.0f;
    q.zero_point = 0;
    return q;
  }
  const float range = max - min;
  q.scale = range > 0 ? range / 255.0f : 1.0f;
  q.zero_point = static_cast<std::int32_t>(
      std::clamp(std::round(-128.0f - min / q.scale), -128.0f, 127.0f));
  return q;
}

// Decompose a positive real multiplier into a Q31 fixed-point value and a
// left shift, as TFLite does for requantization.
void QuantizeMultiplier(double real_multiplier, std::int32_t* quantized,
                        int* shift);

// Rounding-doubling high multiply followed by rounding right shift --
// the requantization primitive.
std::int32_t MultiplyByQuantizedMultiplier(std::int32_t x,
                                           std::int32_t quantized_multiplier,
                                           int shift);

}  // namespace lce

#endif  // LCE_CORE_QUANTIZATION_H_
