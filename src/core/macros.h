// Lightweight check/assert macros used across the LCE reproduction.
//
// LCE_CHECK is always on (programmer-error contract violations abort with a
// message); LCE_DCHECK compiles out in release builds and is used on hot
// paths.
#ifndef LCE_CORE_MACROS_H_
#define LCE_CORE_MACROS_H_

#include <cstdio>
#include <cstdlib>

namespace lce::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "LCE_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace lce::internal

#define LCE_CHECK(expr)                                      \
  do {                                                       \
    if (!(expr)) {                                           \
      ::lce::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                        \
  } while (0)

#define LCE_CHECK_EQ(a, b) LCE_CHECK((a) == (b))
#define LCE_CHECK_NE(a, b) LCE_CHECK((a) != (b))
#define LCE_CHECK_LE(a, b) LCE_CHECK((a) <= (b))
#define LCE_CHECK_LT(a, b) LCE_CHECK((a) < (b))
#define LCE_CHECK_GE(a, b) LCE_CHECK((a) >= (b))
#define LCE_CHECK_GT(a, b) LCE_CHECK((a) > (b))

#ifdef NDEBUG
#define LCE_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define LCE_DCHECK(expr) LCE_CHECK(expr)
#endif

#endif  // LCE_CORE_MACROS_H_
