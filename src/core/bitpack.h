// Bitpacking primitives (the heart of LceQuantize / LceDequantize).
//
// Encoding, following the paper: a 0 bit represents the real value +1.0 and a
// 1 bit represents -1.0 -- i.e. the bit is the float sign bit. Values are
// packed along the innermost (channel) dimension, 32 per TBitpacked word,
// LSB first; trailing padding bits are 0, which encodes +1.0 (one-padding).
#ifndef LCE_CORE_BITPACK_H_
#define LCE_CORE_BITPACK_H_

#include <cstdint>

#include "core/tensor.h"
#include "core/types.h"

namespace lce {

// sign(x) with sign(0) = +1, the binarization function used throughout.
inline float SignValue(float x) { return x < 0.0f ? -1.0f : 1.0f; }

// Packs `channels` float values into ceil(channels/32) words at `dst`.
// Padding bits (channels..32*words) are set to 0 (+1.0).
void BitpackRow(const float* src, int channels, TBitpacked* dst);

// As above but from int8 data (used when binarizing a quantized tensor; the
// zero point must already have been subtracted, so the sign of the int8
// value is the sign of the real value).
void BitpackRowInt8(const std::int8_t* src, int channels, TBitpacked* dst);

// Unpacks `channels` values from bitpacked words into +/-1.0 floats.
void UnpackRow(const TBitpacked* src, int channels, float* dst);

// Packs an entire tensor whose innermost dimension is `channels`.
// src: [outer, channels] float, dst: [outer, words(channels)] bitpacked.
void BitpackMatrix(const float* src, std::int64_t outer, int channels,
                   TBitpacked* dst);

void UnpackMatrix(const TBitpacked* src, std::int64_t outer, int channels,
                  float* dst);

// Convenience wrappers operating on Tensors. The destination tensor must
// have dtype kBitpacked (resp. kFloat32) and the same logical shape.
void BitpackTensor(const Tensor& src, Tensor& dst);
void UnpackTensor(const Tensor& src, Tensor& dst);

// Returns the dot product of two bitpacked vectors of `bits` logical
// elements (reference implementation used in tests):
//   dot = bits - 2 * popcount(a XOR b)
std::int32_t BinaryDotReference(const TBitpacked* a, const TBitpacked* b,
                                int bits);

}  // namespace lce

#endif  // LCE_CORE_BITPACK_H_
