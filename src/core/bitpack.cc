#include "core/bitpack.h"

#include <bit>
#include <cstring>

#include "core/macros.h"

namespace lce {

void BitpackRow(const float* src, int channels, TBitpacked* dst) {
  const int words = BitpackedWords(channels);
  std::memset(dst, 0, static_cast<std::size_t>(words) * sizeof(TBitpacked));
  int c = 0;
  // Full words: extract the float sign bit directly.
  for (int w = 0; w + 1 <= channels / kBitpackWordSize; ++w) {
    TBitpacked bits = 0;
    for (int b = 0; b < kBitpackWordSize; ++b, ++c) {
      std::uint32_t u;
      std::memcpy(&u, &src[c], sizeof(u));
      bits |= (u >> 31) << b;
    }
    dst[w] = bits;
  }
  // Remainder.
  if (c < channels) {
    TBitpacked bits = 0;
    for (int b = 0; c < channels; ++b, ++c) {
      std::uint32_t u;
      std::memcpy(&u, &src[c], sizeof(u));
      bits |= (u >> 31) << b;
    }
    dst[words - 1] = bits;
  }
}

void BitpackRowInt8(const std::int8_t* src, int channels, TBitpacked* dst) {
  const int words = BitpackedWords(channels);
  std::memset(dst, 0, static_cast<std::size_t>(words) * sizeof(TBitpacked));
  for (int c = 0; c < channels; ++c) {
    if (src[c] < 0) dst[c / kBitpackWordSize] |= TBitpacked{1} << (c % kBitpackWordSize);
  }
}

void UnpackRow(const TBitpacked* src, int channels, float* dst) {
  for (int c = 0; c < channels; ++c) {
    const bool neg = (src[c / kBitpackWordSize] >> (c % kBitpackWordSize)) & 1;
    dst[c] = neg ? -1.0f : 1.0f;
  }
}

void BitpackMatrix(const float* src, std::int64_t outer, int channels,
                   TBitpacked* dst) {
  const int words = BitpackedWords(channels);
  for (std::int64_t i = 0; i < outer; ++i) {
    BitpackRow(src + i * channels, channels, dst + i * words);
  }
}

void UnpackMatrix(const TBitpacked* src, std::int64_t outer, int channels,
                  float* dst) {
  const int words = BitpackedWords(channels);
  for (std::int64_t i = 0; i < outer; ++i) {
    UnpackRow(src + i * words, channels, dst + i * channels);
  }
}

void BitpackTensor(const Tensor& src, Tensor& dst) {
  LCE_CHECK(src.dtype() == DataType::kFloat32);
  LCE_CHECK(dst.dtype() == DataType::kBitpacked);
  LCE_CHECK(src.shape() == dst.shape());
  const int channels = static_cast<int>(src.shape().dim(src.shape().rank() - 1));
  const std::int64_t outer = src.num_elements() / channels;
  BitpackMatrix(src.data<float>(), outer, channels, dst.data<TBitpacked>());
}

void UnpackTensor(const Tensor& src, Tensor& dst) {
  LCE_CHECK(src.dtype() == DataType::kBitpacked);
  LCE_CHECK(dst.dtype() == DataType::kFloat32);
  LCE_CHECK(src.shape() == dst.shape());
  const int channels = static_cast<int>(src.shape().dim(src.shape().rank() - 1));
  const std::int64_t outer = src.num_elements() / channels;
  UnpackMatrix(src.data<TBitpacked>(), outer, channels, dst.data<float>());
}

std::int32_t BinaryDotReference(const TBitpacked* a, const TBitpacked* b,
                                int bits) {
  const int words = BitpackedWords(bits);
  std::int32_t popcnt = 0;
  for (int w = 0; w < words; ++w) {
    popcnt += std::popcount(a[w] ^ b[w]);
  }
  // Padding bits are 0 in both operands, so they XOR to 0 and each padded
  // lane contributes +1 to (bits_padded - 2*popcnt). Using the logical `bits`
  // here cancels that contribution exactly.
  return bits - 2 * popcnt;
}

}  // namespace lce
