#include "core/thread_pool.h"

#include <algorithm>
#include <map>
#include <vector>

#include "core/macros.h"
#include "serving/fault_injection.h"
#include "telemetry/clock.h"
#include "telemetry/metrics.h"
#include "telemetry/tracer.h"

namespace lce {

ThreadPool::ThreadPool(int num_threads) : num_threads_(std::max(1, num_threads)) {
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::shared_ptr<ThreadPool> ThreadPool::Shared(int num_threads) {
  num_threads = std::max(1, num_threads);
  // One cached pool per size, held weakly: pools die when the last model /
  // context using them does, and are recreated on demand. Leaked (not
  // destroyed at exit) so worker threads never outlive the registry.
  static std::mutex* mu = new std::mutex;
  static auto* pools = new std::map<int, std::weak_ptr<ThreadPool>>;
  std::lock_guard<std::mutex> lock(*mu);
  auto& slot = (*pools)[num_threads];
  if (auto existing = slot.lock()) return existing;
  auto pool = std::make_shared<ThreadPool>(num_threads);
  slot = pool;
  return pool;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task.fn();
  }
}

bool ThreadPool::RunOneTask() {
  Task task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop();
  }
  task.fn();
  return true;
}

void ThreadPool::ParallelFor(
    std::int64_t count,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  ParallelForShard(count, [&fn](int /*shard*/, std::int64_t begin,
                                std::int64_t end) { fn(begin, end); });
}

void ThreadPool::ParallelForShard(
    std::int64_t count,
    const std::function<void(int, std::int64_t, std::int64_t)>& fn) {
  // The void form is the infallible adapter over the status-propagating
  // core; the wrapper can never produce a non-Ok status.
  TryParallelForShard(count,
                      [&fn](int shard, std::int64_t begin, std::int64_t end) {
                        fn(shard, begin, end);
                        return Status::Ok();
                      });
}

Status ThreadPool::TryParallelFor(
    std::int64_t count,
    const std::function<Status(std::int64_t, std::int64_t)>& fn) {
  return TryParallelForShard(
      count, [&fn](int /*shard*/, std::int64_t begin, std::int64_t end) {
        return fn(begin, end);
      });
}

Status ThreadPool::TryParallelForShard(
    std::int64_t count,
    const std::function<Status(int, std::int64_t, std::int64_t)>& fn) {
  if (count <= 0) return Status::Ok();
  const int shards = PlannedShards(count);
  static telemetry::Metric* pf_calls =
      telemetry::MetricsRegistry::Global().Counter(
          "threadpool.parallel_for_calls");
  static telemetry::Metric* pf_shards =
      telemetry::MetricsRegistry::Global().Counter(
          "threadpool.shards_executed");
  pf_calls->Add(1);
  // Balanced split (below) never produces an empty shard, so every shard
  // counted here executes at least one index.
  pf_shards->Add(shards);
  const bool tracing = telemetry::TracingActive();
  // Per-shard wall times, only gathered while tracing. Feeds the shard
  // spans (emitted on each worker's own track) and the imbalance gauge.
  std::vector<std::uint64_t> shard_ns(tracing ? shards : 0, 0);
  // Runs one shard: fault point (stalled-worker injection), optional span,
  // then the user fn. Every shard runs to completion even if a sibling has
  // already failed -- a partial result is only ever reported through the
  // returned status, never through shards silently skipping work.
  const auto run_shard = [&](int s, std::int64_t begin,
                             std::int64_t end) -> Status {
    LCE_FAULT_ON_SHARD(s);
    if (!tracing) return fn(s, begin, end);
    const std::uint64_t s0 = telemetry::NowNanos();
    Status st = fn(s, begin, end);
    const std::uint64_t s1 = telemetry::NowNanos();
    telemetry::Tracer::Global().RecordCompleteWithArg(
        "threadpool/shard", "threadpool", s0, s1, "shard", s);
    shard_ns[s] = s1 - s0;
    return st;
  };
  if (shards == 1) return run_shard(0, 0, count);
  // Balanced split: base indices per shard, with the first `rem` shards
  // taking one extra. The previous ceil-based split could leave tail shards
  // empty (count=5, shards=4 gave loads 2,2,1,0).
  const std::int64_t base = count / shards;
  const std::int64_t rem = count % shards;
  const auto shard_begin = [base, rem](int s) {
    return s * base + std::min<std::int64_t>(s, rem);
  };
  // Per-call completion state, on the submitter's stack. `remaining` is a
  // plain counter guarded by done_mu: workers decrement it (and notify)
  // under the lock, and the submitter's final wait re-checks it under the
  // same lock, so by the time ParallelFor returns no worker can still be
  // touching this frame. done_mu also orders the shard_ns writes above and
  // guards the first-error slot: the lowest-indexed failing shard wins, so
  // the reported status is deterministic regardless of scheduling order.
  std::mutex done_mu;
  std::condition_variable done_cv;
  int remaining = shards - 1;
  Status first_error;
  int first_error_shard = shards;  // sentinel: no error
  const auto record_error = [&](int s, Status st) {
    // Caller must hold done_mu.
    if (!st.ok() && s < first_error_shard) {
      first_error_shard = s;
      first_error = std::move(st);
    }
  };
  // Enqueue shards 1..n-1; run shard 0 on the caller.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int s = 1; s < shards; ++s) {
      const std::int64_t begin = shard_begin(s);
      const std::int64_t end = shard_begin(s + 1);
      queue_.push(Task{[&, s, begin, end] {
        Status st = run_shard(s, begin, end);
        std::lock_guard<std::mutex> done_lock(done_mu);
        record_error(s, std::move(st));
        if (--remaining == 0) done_cv.notify_one();
      }});
    }
  }
  cv_.notify_all();
  {
    Status st0 = run_shard(0, 0, shard_begin(1));
    std::lock_guard<std::mutex> done_lock(done_mu);
    record_error(0, std::move(st0));
  }
  // Help drain the queue while our shards are still pending. The popped
  // task may belong to another concurrent submitter -- tasks are
  // self-contained, so that only moves its work onto this thread instead
  // of leaving this one blocked while the queue is non-empty.
  for (;;) {
    {
      std::lock_guard<std::mutex> done_lock(done_mu);
      if (remaining == 0) break;
    }
    if (!RunOneTask()) break;
  }
  {
    std::unique_lock<std::mutex> done_lock(done_mu);
    done_cv.wait(done_lock, [&] { return remaining == 0; });
  }
  if (tracing) {
    const auto [mn, mx] = std::minmax_element(shard_ns.begin(), shard_ns.end());
    if (*mx > 0) {
      static telemetry::Metric* imbalance =
          telemetry::MetricsRegistry::Global().Gauge(
              "threadpool.shard_imbalance_pct");
      imbalance->SetMax(static_cast<std::int64_t>((*mx - *mn) * 100 / *mx));
    }
  }
  // All shards have completed; first_error needs no further locking.
  return first_error_shard < shards ? first_error : Status::Ok();
}

}  // namespace lce
