#include "core/thread_pool.h"

#include <algorithm>
#include <vector>

#include "core/macros.h"
#include "telemetry/clock.h"
#include "telemetry/metrics.h"
#include "telemetry/tracer.h"

namespace lce {

ThreadPool::ThreadPool(int num_threads) : num_threads_(std::max(1, num_threads)) {
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task.fn();
  }
}

void ThreadPool::ParallelFor(
    std::int64_t count,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (count <= 0) return;
  const int shards = static_cast<int>(
      std::min<std::int64_t>(num_threads_, count));
  static telemetry::Metric* pf_calls =
      telemetry::MetricsRegistry::Global().Counter(
          "threadpool.parallel_for_calls");
  static telemetry::Metric* pf_shards =
      telemetry::MetricsRegistry::Global().Counter(
          "threadpool.shards_executed");
  pf_calls->Add(1);
  pf_shards->Add(shards);
  const bool tracing = telemetry::TracingActive();
  if (shards == 1) {
    if (tracing) {
      const std::uint64_t s0 = telemetry::NowNanos();
      fn(0, count);
      telemetry::Tracer::Global().RecordCompleteWithArg(
          "threadpool/shard", "threadpool", s0, telemetry::NowNanos(), "shard",
          0);
    } else {
      fn(0, count);
    }
    return;
  }
  std::atomic<int> remaining{shards - 1};
  std::mutex done_mu;
  std::condition_variable done_cv;
  const std::int64_t per_shard = (count + shards - 1) / shards;
  // Per-shard wall times, only gathered while tracing: workers write
  // disjoint slots before the fetch_sub that releases the caller's wait, so
  // the post-wait read below is ordered. Feeds the shard spans (emitted on
  // each worker's own track) and the imbalance gauge.
  std::vector<std::uint64_t> shard_ns(tracing ? shards : 0, 0);
  // Enqueue shards 1..n-1; run shard 0 on the caller.
  for (int s = 1; s < shards; ++s) {
    const std::int64_t begin = s * per_shard;
    const std::int64_t end = std::min<std::int64_t>(count, begin + per_shard);
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(Task{[&, s, begin, end] {
      if (tracing) {
        const std::uint64_t s0 = telemetry::NowNanos();
        if (begin < end) fn(begin, end);
        const std::uint64_t s1 = telemetry::NowNanos();
        telemetry::Tracer::Global().RecordCompleteWithArg(
            "threadpool/shard", "threadpool", s0, s1, "shard", s);
        shard_ns[s] = s1 - s0;
      } else if (begin < end) {
        fn(begin, end);
      }
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> done_lock(done_mu);
        done_cv.notify_one();
      }
    }});
  }
  cv_.notify_all();
  const std::int64_t shard0_end = std::min<std::int64_t>(count, per_shard);
  if (tracing) {
    const std::uint64_t s0 = telemetry::NowNanos();
    fn(0, shard0_end);
    const std::uint64_t s1 = telemetry::NowNanos();
    telemetry::Tracer::Global().RecordCompleteWithArg(
        "threadpool/shard", "threadpool", s0, s1, "shard", 0);
    shard_ns[0] = s1 - s0;
  } else {
    fn(0, shard0_end);
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
  if (tracing) {
    const auto [mn, mx] = std::minmax_element(shard_ns.begin(), shard_ns.end());
    if (*mx > 0) {
      static telemetry::Metric* imbalance =
          telemetry::MetricsRegistry::Global().Gauge(
              "threadpool.shard_imbalance_pct");
      imbalance->SetMax(static_cast<std::int64_t>((*mx - *mn) * 100 / *mx));
    }
  }
}

}  // namespace lce
