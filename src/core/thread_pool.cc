#include "core/thread_pool.h"

#include <algorithm>

#include "core/macros.h"

namespace lce {

ThreadPool::ThreadPool(int num_threads) : num_threads_(std::max(1, num_threads)) {
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task.fn();
  }
}

void ThreadPool::ParallelFor(
    std::int64_t count,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (count <= 0) return;
  const int shards = static_cast<int>(
      std::min<std::int64_t>(num_threads_, count));
  if (shards == 1) {
    fn(0, count);
    return;
  }
  std::atomic<int> remaining{shards - 1};
  std::mutex done_mu;
  std::condition_variable done_cv;
  const std::int64_t per_shard = (count + shards - 1) / shards;
  // Enqueue shards 1..n-1; run shard 0 on the caller.
  for (int s = 1; s < shards; ++s) {
    const std::int64_t begin = s * per_shard;
    const std::int64_t end = std::min<std::int64_t>(count, begin + per_shard);
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(Task{[&, begin, end] {
      if (begin < end) fn(begin, end);
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> done_lock(done_mu);
        done_cv.notify_one();
      }
    }});
  }
  cv_.notify_all();
  fn(0, std::min<std::int64_t>(count, per_shard));
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
}

}  // namespace lce
