// Tensor shapes. Activations are NHWC; convolution weights are OHWI
// (output-channels, height, width, input-channels), matching TFLite.
#ifndef LCE_CORE_SHAPE_H_
#define LCE_CORE_SHAPE_H_

#include <array>
#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <string>

#include "core/macros.h"

namespace lce {

// A small fixed-capacity shape (up to 6 dims), value semantic.
class Shape {
 public:
  static constexpr int kMaxDims = 6;

  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims) {
    LCE_CHECK_LE(static_cast<int>(dims.size()), kMaxDims);
    rank_ = static_cast<int>(dims.size());
    int i = 0;
    for (auto d : dims) dims_[i++] = d;
  }

  int rank() const { return rank_; }

  std::int64_t dim(int i) const {
    LCE_DCHECK(i >= 0 && i < rank_);
    return dims_[i];
  }

  std::int64_t& dim(int i) {
    LCE_DCHECK(i >= 0 && i < rank_);
    return dims_[i];
  }

  std::int64_t operator[](int i) const { return dim(i); }

  // Total number of logical elements. Only safe on shapes whose dimension
  // product is known to fit in int64 (all validated shapes); use
  // checked_num_elements on model-derived shapes.
  std::int64_t num_elements() const {
    std::int64_t n = 1;
    for (int i = 0; i < rank_; ++i) n *= dims_[i];
    return n;
  }

  // Overflow-checked element count for untrusted shapes: returns false (and
  // leaves *out untouched) if any dimension is negative or the product
  // overflows int64. Adversarial dimension combinations must produce errors,
  // not signed-overflow UB.
  bool checked_num_elements(std::int64_t* out) const {
    std::int64_t n = 1;
    for (int i = 0; i < rank_; ++i) {
      if (dims_[i] < 0) return false;
      if (__builtin_mul_overflow(n, dims_[i], &n)) return false;
    }
    *out = n;
    return true;
  }

  bool operator==(const Shape& other) const {
    if (rank_ != other.rank_) return false;
    for (int i = 0; i < rank_; ++i) {
      if (dims_[i] != other.dims_[i]) return false;
    }
    return true;
  }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  std::string ToString() const {
    std::string s = "[";
    for (int i = 0; i < rank_; ++i) {
      if (i) s += ", ";
      s += std::to_string(dims_[i]);
    }
    s += "]";
    return s;
  }

 private:
  int rank_ = 0;
  std::array<std::int64_t, kMaxDims> dims_{};
};

}  // namespace lce

#endif  // LCE_CORE_SHAPE_H_
