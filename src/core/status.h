// Error handling for user-facing APIs (converter, serializer, runtime
// construction). Internal invariants use LCE_CHECK instead.
#ifndef LCE_CORE_STATUS_H_
#define LCE_CORE_STATUS_H_

#include <string>
#include <utility>

namespace lce {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kDataLoss,
  kResourceExhausted,
  // Serving-path codes (docs/SERVING.md): a request's deadline expired (in
  // the admission queue or mid-model at a cancellation point) or the client
  // cancelled it explicitly.
  kDeadlineExceeded,
  kCancelled,
};

// A value-semantic status: either OK or a code plus a human-readable message.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status DataLoss(std::string m) {
    return Status(StatusCode::kDataLoss, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status Cancelled(std::string m) {
    return Status(StatusCode::kCancelled, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Propagate a non-OK status to the caller.
#define LCE_RETURN_IF_ERROR(expr)          \
  do {                                     \
    ::lce::Status _status = (expr);        \
    if (!_status.ok()) return _status;     \
  } while (0)

}  // namespace lce

#endif  // LCE_CORE_STATUS_H_
