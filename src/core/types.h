// Core scalar type definitions shared across the engine.
#ifndef LCE_CORE_TYPES_H_
#define LCE_CORE_TYPES_H_

#include <cstdint>
#include <cstddef>
#include <string_view>

namespace lce {

// The word type used for bitpacked binary activations/weights. The paper's
// LceQuantize packs 32 channel values per word; a 0 bit encodes +1.0 and a 1
// bit encodes -1.0 (sign bit of the float value).
using TBitpacked = std::uint32_t;
inline constexpr int kBitpackWordSize = 32;

// Number of 32-bit words needed to bitpack `channels` values.
constexpr int BitpackedWords(int channels) {
  return (channels + kBitpackWordSize - 1) / kBitpackWordSize;
}

enum class DataType : std::uint8_t {
  kFloat32 = 0,
  kInt8 = 1,
  kInt32 = 2,
  kBitpacked = 3,  // 1-bit values packed 32-per-uint32 along the channel dim.
};

// Enum-range validators for bytes read from untrusted model files; a raw
// byte must pass these before being static_cast to the enum type.
constexpr bool IsValidDType(std::uint8_t v) {
  return v <= static_cast<std::uint8_t>(DataType::kBitpacked);
}

// Size in bytes of one *storage element* of the given type. For kBitpacked
// the storage element is a 32-bit word holding 32 logical values.
constexpr std::size_t DataTypeByteSize(DataType t) {
  switch (t) {
    case DataType::kFloat32:
      return 4;
    case DataType::kInt8:
      return 1;
    case DataType::kInt32:
      return 4;
    case DataType::kBitpacked:
      return sizeof(TBitpacked);
  }
  return 0;
}

constexpr std::string_view DataTypeName(DataType t) {
  switch (t) {
    case DataType::kFloat32:
      return "float32";
    case DataType::kInt8:
      return "int8";
    case DataType::kInt32:
      return "int32";
    case DataType::kBitpacked:
      return "bitpacked";
  }
  return "unknown";
}

// Padding semantics for convolutions.
//
// kValid      : no padding.
// kSameZero   : TensorFlow-style SAME padding with zeros. For binarized
//               convolutions this needs a correction step (see
//               kernels/bconv2d.h) because bitpacked data cannot represent 0.
// kSameOne    : SAME padding with +1.0 values; the natural padding for
//               bitpacked data (paper section 3.2, "one-padding").
enum class Padding : std::uint8_t { kValid = 0, kSameZero = 1, kSameOne = 2 };

constexpr bool IsValidPadding(std::uint8_t v) {
  return v <= static_cast<std::uint8_t>(Padding::kSameOne);
}

constexpr std::string_view PaddingName(Padding p) {
  switch (p) {
    case Padding::kValid:
      return "VALID";
    case Padding::kSameZero:
      return "SAME_ZERO";
    case Padding::kSameOne:
      return "SAME_ONE";
  }
  return "unknown";
}

// Fused activation functions supported by the output transform. kSigmoid is
// used by the data-driven gating branches of RealToBinaryNet.
enum class Activation : std::uint8_t {
  kNone = 0,
  kRelu = 1,
  kRelu6 = 2,
  kSigmoid = 3,
};

constexpr bool IsValidActivation(std::uint8_t v) {
  return v <= static_cast<std::uint8_t>(Activation::kSigmoid);
}

constexpr std::string_view ActivationName(Activation a) {
  switch (a) {
    case Activation::kNone:
      return "none";
    case Activation::kRelu:
      return "relu";
    case Activation::kRelu6:
      return "relu6";
    case Activation::kSigmoid:
      return "sigmoid";
  }
  return "unknown";
}

}  // namespace lce

#endif  // LCE_CORE_TYPES_H_
