// Deterministic random data generation for tests and benchmarks.
#ifndef LCE_CORE_RANDOM_H_
#define LCE_CORE_RANDOM_H_

#include <cstdint>

#include "core/tensor.h"

namespace lce {

// A small, fast, deterministic PRNG (xorshift128+). Not for cryptography.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    s0_ = seed ^ 0xDEADBEEFCAFEBABEull;
    s1_ = seed * 0x2545F4914F6CDD1Dull + 1;
    // Warm up.
    for (int i = 0; i < 8; ++i) Next();
  }

  std::uint64_t Next() {
    std::uint64_t x = s0_;
    const std::uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  // Uniform float in [lo, hi).
  float Uniform(float lo = -1.0f, float hi = 1.0f) {
    const double u = static_cast<double>(Next() >> 11) * 0x1.0p-53;
    return lo + static_cast<float>(u * (hi - lo));
  }

  // Uniform integer in [0, n).
  std::uint64_t UniformInt(std::uint64_t n) { return Next() % n; }

  // Random sign: +1.0f or -1.0f.
  float Sign() { return (Next() & 1) ? 1.0f : -1.0f; }

  std::int8_t Int8(int lo = -127, int hi = 127) {
    return static_cast<std::int8_t>(lo + static_cast<int>(UniformInt(hi - lo + 1)));
  }

 private:
  std::uint64_t s0_, s1_;
};

// Fills a float tensor with uniform values in [lo, hi).
void FillUniform(Tensor& t, Rng& rng, float lo = -1.0f, float hi = 1.0f);

// Fills a float tensor with random +/-1 values.
void FillSigns(Tensor& t, Rng& rng);

// Fills an int8 tensor with uniform values.
void FillInt8(Tensor& t, Rng& rng);

// Fills a bitpacked tensor with random bits (respecting channel padding:
// padding bits stay 0).
void FillBitpacked(Tensor& t, Rng& rng);

}  // namespace lce

#endif  // LCE_CORE_RANDOM_H_
