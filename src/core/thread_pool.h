// A small work-stealing-free thread pool used by the GEMM context for
// multi-threaded inference (the feature the paper notes DaBNN lacks).
//
// Design: a fixed set of worker threads executes `ParallelFor` shards. With
// num_threads == 1 everything runs inline on the caller, which keeps
// single-threaded latency measurements free of synchronization noise.
//
// Concurrency: `ParallelFor` is safe to call from any number of threads
// simultaneously on one pool -- the serving path shares a single process
// pool across all in-flight requests (see docs/SERVING.md). Each call's
// completion state lives on the submitter's stack and is reference-counted
// under a per-call mutex, so a call returns only after every one of its
// shards has fully finished (including the completion signal itself; the
// old atomic+notify scheme could touch a destroyed condition variable).
// While waiting, a submitter helps drain the shared queue, so submitters
// never sit idle while runnable shards (their own or another request's)
// are queued.
#ifndef LCE_CORE_THREAD_POOL_H_
#define LCE_CORE_THREAD_POOL_H_

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "core/status.h"

namespace lce {

class ThreadPool {
 public:
  // Creates a pool with `num_threads` total workers. One of them is the
  // calling thread, so `num_threads - 1` std::threads are spawned.
  explicit ThreadPool(int num_threads = 1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Process-shared pool of the given size: repeated calls with the same
  // `num_threads` return the same instance while anyone still holds it.
  // This is what lets N concurrent ExecutionContexts (and the Interpreter
  // compatibility wrapper) share one set of worker threads instead of
  // spawning a pool per request.
  static std::shared_ptr<ThreadPool> Shared(int num_threads);

  int num_threads() const { return num_threads_; }

  // Runs fn(i) for i in [0, count), sharded across the pool. Blocks until
  // all shards are done. fn must be safe to call concurrently. Shards are
  // balanced: every shard gets count/num_shards indices, +1 for the first
  // count%num_shards shards, so no shard is ever empty.
  void ParallelFor(std::int64_t count,
                   const std::function<void(std::int64_t, std::int64_t)>& fn);

  // Number of shards ParallelFor/ParallelForShard will split `count` indices
  // into. Lets callers pre-allocate shard-local scratch before submitting.
  int PlannedShards(std::int64_t count) const {
    return static_cast<int>(
        std::min<std::int64_t>(num_threads_, std::max<std::int64_t>(count, 0)));
  }

  // ParallelFor variant passing the shard index: fn(shard, begin, end) with
  // shard in [0, PlannedShards(count)). Each shard index is used by exactly
  // one concurrent call of fn, so fn may own mutable per-shard state (e.g. a
  // scratch slice) indexed by it -- the fused BConv2D pipeline keeps one
  // A-panel and one accumulator tile per shard this way.
  void ParallelForShard(
      std::int64_t count,
      const std::function<void(int, std::int64_t, std::int64_t)>& fn);

  // Status-propagating variants for fallible shard work (the serving path's
  // no-abort-on-runtime-data rule). Every shard always runs to completion --
  // there is no mid-flight abort of sibling shards, so the data written by
  // successful shards is well-defined -- and the status of the
  // lowest-indexed failing shard is returned, deterministically, regardless
  // of scheduling order. Returns Ok when every shard returned Ok.
  Status TryParallelFor(
      std::int64_t count,
      const std::function<Status(std::int64_t, std::int64_t)>& fn);
  Status TryParallelForShard(
      std::int64_t count,
      const std::function<Status(int, std::int64_t, std::int64_t)>& fn);

 private:
  void WorkerLoop();
  // Pops and runs one queued task. Returns false if the queue was empty.
  bool RunOneTask();

  struct Task {
    std::function<void()> fn;
  };

  int num_threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<Task> queue_;
  bool shutdown_ = false;
};

}  // namespace lce

#endif  // LCE_CORE_THREAD_POOL_H_
