// A small work-stealing-free thread pool used by the GEMM context for
// multi-threaded inference (the feature the paper notes DaBNN lacks).
//
// Design: a fixed set of worker threads executes `ParallelFor` shards. With
// num_threads == 1 everything runs inline on the caller, which keeps
// single-threaded latency measurements free of synchronization noise.
#ifndef LCE_CORE_THREAD_POOL_H_
#define LCE_CORE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lce {

class ThreadPool {
 public:
  // Creates a pool with `num_threads` total workers. One of them is the
  // calling thread, so `num_threads - 1` std::threads are spawned.
  explicit ThreadPool(int num_threads = 1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Runs fn(i) for i in [0, count), sharded across the pool. Blocks until
  // all shards are done. fn must be safe to call concurrently.
  void ParallelFor(std::int64_t count,
                   const std::function<void(std::int64_t, std::int64_t)>& fn);

 private:
  void WorkerLoop();

  struct Task {
    std::function<void()> fn;
  };

  int num_threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<Task> queue_;
  bool shutdown_ = false;
};

}  // namespace lce

#endif  // LCE_CORE_THREAD_POOL_H_
