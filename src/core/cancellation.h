// Cooperative cancellation for in-flight inference requests
// (docs/SERVING.md).
//
// A CancellationToken carries two independent triggers:
//   * an explicit Cancel() from the request owner (client disconnect,
//     admission-queue drop), and
//   * a monotonic-clock deadline (per-request SLO budget).
//
// The runtime never preempts work: the token is *checked* at cooperative
// cancellation points -- per-node boundaries in ExecutionContext::Invoke and
// row-tile-block boundaries inside the ConvPipeline engine -- so a shard
// always finishes the block it started, and an expired request returns
// Status::DeadlineExceeded (or kCancelled) mid-model instead of running to
// completion.
//
// Thread-safety: Cancel() and set_deadline() may race freely with any number
// of concurrent Expired()/status() readers (everything is relaxed atomics on
// one cache line; cancellation is a level, not an event, so relaxed ordering
// is enough -- a check that narrowly misses the flag is caught at the next
// cancellation point).
#ifndef LCE_CORE_CANCELLATION_H_
#define LCE_CORE_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

#include "core/status.h"

namespace lce {

class CancellationToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  // Marks the token cancelled (idempotent; an already-expired deadline wins
  // the status() race benignly -- both report a non-Ok terminal code).
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  // Absolute monotonic deadline. kNoDeadline (the default) disables the
  // timer trigger.
  void set_deadline(Clock::time_point deadline) {
    deadline_ns_.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            deadline.time_since_epoch())
            .count(),
        std::memory_order_relaxed);
  }
  void set_deadline_after(std::chrono::nanoseconds budget) {
    set_deadline(Clock::now() + budget);
  }
  void clear_deadline() {
    deadline_ns_.store(kNoDeadline, std::memory_order_relaxed);
  }

  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

  bool deadline_expired() const {
    const std::int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    if (d == kNoDeadline) return false;
    return Clock::now().time_since_epoch() >= std::chrono::nanoseconds(d);
  }

  // True once either trigger fired. This is the cancellation-point check.
  bool Expired() const { return cancelled() || deadline_expired(); }

  // The absolute deadline in steady-clock nanoseconds (the same epoch as
  // telemetry::NowNanos), or kNoDeadline when no deadline is armed. The
  // batching scheduler reads this to bound how long a batch may wait for
  // more lanes without pushing any member past its SLO budget.
  std::int64_t deadline_ns() const {
    return deadline_ns_.load(std::memory_order_relaxed);
  }
  bool has_deadline() const { return deadline_ns() != kNoDeadline; }

  static constexpr std::int64_t kNoDeadline =
      std::numeric_limits<std::int64_t>::max();

  // Ok while live; the terminal Status once a trigger fired. Explicit
  // cancellation is reported in preference to the deadline so a client
  // abandoning a request is not misclassified as an SLO miss.
  Status status() const {
    if (cancelled()) return Status::Cancelled("request cancelled");
    if (deadline_expired()) {
      return Status::DeadlineExceeded("request deadline exceeded");
    }
    return Status::Ok();
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{kNoDeadline};
};

}  // namespace lce

#endif  // LCE_CORE_CANCELLATION_H_
