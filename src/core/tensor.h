// Tensor: a typed, shaped view over aligned storage.
//
// Layout conventions (matching TFLite / the LCE paper):
//   * Activations: NHWC.
//   * Convolution weights: OHWI.
//   * Bitpacked tensors store the *logical* shape; the innermost dimension is
//     packed 32 values per TBitpacked word and padded up to a multiple of 32
//     with 0 bits (which encode +1.0 -- the paper's one-padding convention).
#ifndef LCE_CORE_TENSOR_H_
#define LCE_CORE_TENSOR_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "core/aligned_buffer.h"
#include "core/macros.h"
#include "core/quantization.h"
#include "core/shape.h"
#include "core/types.h"

namespace lce {

class Tensor {
 public:
  Tensor() = default;

  // Allocates owned storage for the given logical shape and type.
  Tensor(DataType dtype, Shape shape) : dtype_(dtype), shape_(shape) {
    buffer_ = std::make_shared<AlignedBuffer>(ByteSize(dtype, shape));
    data_ = buffer_->data();
  }

  // Wraps external storage (not owned). The caller must keep `data` alive.
  static Tensor View(DataType dtype, Shape shape, void* data) {
    Tensor t;
    t.dtype_ = dtype;
    t.shape_ = shape;
    t.data_ = static_cast<std::uint8_t*>(data);
    return t;
  }

  DataType dtype() const { return dtype_; }
  const Shape& shape() const { return shape_; }

  // Number of *logical* elements (for bitpacked tensors, the number of bits
  // before channel padding).
  std::int64_t num_elements() const { return shape_.num_elements(); }

  // Number of storage elements (words for bitpacked, scalars otherwise).
  std::int64_t storage_elements() const {
    return StorageElements(dtype_, shape_);
  }

  std::size_t byte_size() const { return ByteSize(dtype_, shape_); }

  bool allocated() const { return data_ != nullptr; }

  template <typename T>
  T* data() {
    return reinterpret_cast<T*>(data_);
  }
  template <typename T>
  const T* data() const {
    return reinterpret_cast<const T*>(data_);
  }

  void* raw_data() { return data_; }
  const void* raw_data() const { return data_; }

  void Zero() {
    LCE_CHECK(data_ != nullptr);
    std::memset(data_, 0, byte_size());
  }

  QuantParams& quant() { return quant_; }
  const QuantParams& quant() const { return quant_; }

  // --- static layout helpers -------------------------------------------

  // Storage element count for a (dtype, shape) pair. For bitpacked tensors
  // the innermost dimension is packed into ceil(C/32) words.
  static std::int64_t StorageElements(DataType dtype, const Shape& shape) {
    if (dtype != DataType::kBitpacked) return shape.num_elements();
    LCE_CHECK_GE(shape.rank(), 1);
    std::int64_t outer = 1;
    for (int i = 0; i + 1 < shape.rank(); ++i) outer *= shape.dim(i);
    return outer * BitpackedWords(static_cast<int>(shape.dim(shape.rank() - 1)));
  }

  static std::size_t ByteSize(DataType dtype, const Shape& shape) {
    return static_cast<std::size_t>(StorageElements(dtype, shape)) *
           DataTypeByteSize(dtype);
  }

  // Overflow-checked byte size for untrusted (dtype, shape) pairs. Returns
  // false on negative dimensions, element-count overflow, rank-0 bitpacked
  // shapes, or an out-of-range dtype -- all the cases where ByteSize would
  // abort or silently wrap.
  static bool CheckedByteSize(DataType dtype, const Shape& shape,
                              std::size_t* out) {
    if (!IsValidDType(static_cast<std::uint8_t>(dtype))) return false;
    std::int64_t elements = 0;
    if (dtype == DataType::kBitpacked) {
      if (shape.rank() < 1) return false;
      std::int64_t outer = 1;
      for (int i = 0; i + 1 < shape.rank(); ++i) {
        if (shape.dim(i) < 0) return false;
        if (__builtin_mul_overflow(outer, shape.dim(i), &outer)) return false;
      }
      const std::int64_t inner = shape.dim(shape.rank() - 1);
      if (inner < 0 || inner > std::numeric_limits<int>::max()) return false;
      const std::int64_t words = BitpackedWords(static_cast<int>(inner));
      if (__builtin_mul_overflow(outer, words, &elements)) return false;
    } else {
      if (!shape.checked_num_elements(&elements)) return false;
    }
    std::int64_t bytes = 0;
    const auto elem_size = static_cast<std::int64_t>(DataTypeByteSize(dtype));
    if (__builtin_mul_overflow(elements, elem_size, &bytes)) return false;
    *out = static_cast<std::size_t>(bytes);
    return true;
  }

 private:
  DataType dtype_ = DataType::kFloat32;
  Shape shape_;
  std::shared_ptr<AlignedBuffer> buffer_;  // null when viewing external data
  std::uint8_t* data_ = nullptr;
  QuantParams quant_;
};

}  // namespace lce

#endif  // LCE_CORE_TENSOR_H_
