// Tensor: a typed, shaped view over aligned storage.
//
// Layout conventions (matching TFLite / the LCE paper):
//   * Activations: NHWC.
//   * Convolution weights: OHWI.
//   * Bitpacked tensors store the *logical* shape; the innermost dimension is
//     packed 32 values per TBitpacked word and padded up to a multiple of 32
//     with 0 bits (which encode +1.0 -- the paper's one-padding convention).
#ifndef LCE_CORE_TENSOR_H_
#define LCE_CORE_TENSOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/aligned_buffer.h"
#include "core/macros.h"
#include "core/quantization.h"
#include "core/shape.h"
#include "core/types.h"

namespace lce {

class Tensor {
 public:
  Tensor() = default;

  // Allocates owned storage for the given logical shape and type.
  Tensor(DataType dtype, Shape shape) : dtype_(dtype), shape_(shape) {
    buffer_ = std::make_shared<AlignedBuffer>(ByteSize(dtype, shape));
    data_ = buffer_->data();
  }

  // Wraps external storage (not owned). The caller must keep `data` alive.
  static Tensor View(DataType dtype, Shape shape, void* data) {
    Tensor t;
    t.dtype_ = dtype;
    t.shape_ = shape;
    t.data_ = static_cast<std::uint8_t*>(data);
    return t;
  }

  DataType dtype() const { return dtype_; }
  const Shape& shape() const { return shape_; }

  // Number of *logical* elements (for bitpacked tensors, the number of bits
  // before channel padding).
  std::int64_t num_elements() const { return shape_.num_elements(); }

  // Number of storage elements (words for bitpacked, scalars otherwise).
  std::int64_t storage_elements() const {
    return StorageElements(dtype_, shape_);
  }

  std::size_t byte_size() const { return ByteSize(dtype_, shape_); }

  bool allocated() const { return data_ != nullptr; }

  template <typename T>
  T* data() {
    return reinterpret_cast<T*>(data_);
  }
  template <typename T>
  const T* data() const {
    return reinterpret_cast<const T*>(data_);
  }

  void* raw_data() { return data_; }
  const void* raw_data() const { return data_; }

  void Zero() {
    LCE_CHECK(data_ != nullptr);
    std::memset(data_, 0, byte_size());
  }

  QuantParams& quant() { return quant_; }
  const QuantParams& quant() const { return quant_; }

  // --- static layout helpers -------------------------------------------

  // Storage element count for a (dtype, shape) pair. For bitpacked tensors
  // the innermost dimension is packed into ceil(C/32) words.
  static std::int64_t StorageElements(DataType dtype, const Shape& shape) {
    if (dtype != DataType::kBitpacked) return shape.num_elements();
    LCE_CHECK_GE(shape.rank(), 1);
    std::int64_t outer = 1;
    for (int i = 0; i + 1 < shape.rank(); ++i) outer *= shape.dim(i);
    return outer * BitpackedWords(static_cast<int>(shape.dim(shape.rank() - 1)));
  }

  static std::size_t ByteSize(DataType dtype, const Shape& shape) {
    return static_cast<std::size_t>(StorageElements(dtype, shape)) *
           DataTypeByteSize(dtype);
  }

 private:
  DataType dtype_ = DataType::kFloat32;
  Shape shape_;
  std::shared_ptr<AlignedBuffer> buffer_;  // null when viewing external data
  std::uint8_t* data_ = nullptr;
  QuantParams quant_;
};

}  // namespace lce

#endif  // LCE_CORE_TENSOR_H_
