#include "gemm/indirect_bgemm.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>

#include "core/macros.h"
#include "gemm/bgemm.h"
#include "telemetry/metrics.h"
#include "telemetry/tracer.h"

namespace lce::gemm {

IndirectionOffsets::IndirectionOffsets(const Conv2DGeometry& g) {
  words_ = BitpackedWords(g.in_c);
  taps_ = g.filter_h * g.filter_w;
  const int out_h = g.out_h(), out_w = g.out_w();
  rows_ = static_cast<std::int64_t>(g.batch) * out_h * out_w;
  // Offsets are stored as int32 word indices; any input addressable within
  // that range is far beyond the resource limits of the untrusted-model
  // path, so this only guards the trusted standalone-kernel API.
  LCE_CHECK(static_cast<std::int64_t>(g.batch) * g.in_h * g.in_w * words_ <=
            std::numeric_limits<std::int32_t>::max());
  offsets_.resize(static_cast<std::size_t>(rows_) * taps_);

  const int pad_h = g.pad_h_begin(), pad_w = g.pad_w_begin();
  std::size_t idx = 0;
  for (int b = 0; b < g.batch; ++b) {
    for (int oy = 0; oy < out_h; ++oy) {
      for (int ox = 0; ox < out_w; ++ox) {
        const int iy0 = oy * g.stride_h - pad_h;
        const int ix0 = ox * g.stride_w - pad_w;
        for (int ky = 0; ky < g.filter_h; ++ky) {
          const int iy = iy0 + ky;
          for (int kx = 0; kx < g.filter_w; ++kx) {
            const int ix = ix0 + kx;
            if (iy < 0 || iy >= g.in_h || ix < 0 || ix >= g.in_w) {
              offsets_[idx++] = kPaddedTap;
            } else {
              offsets_[idx++] = static_cast<std::int32_t>(
                  ((static_cast<std::int64_t>(b) * g.in_h + iy) * g.in_w + ix) *
                  words_);
            }
          }
        }
      }
    }
  }
}

void GatherPackTile(const TBitpacked* input, const IndirectionOffsets& ind,
                    const TBitpacked* zero_row, std::int64_t row0,
                    int tile_rows, int k_blocks, std::uint64_t* dst) {
  const int taps = ind.taps();
  const int words = ind.words();
  const int kw = taps * words;
  const std::int64_t kb_stride =
      static_cast<std::int64_t>(tile_rows) * kBgemmKWords64;

  // Fast path (every realistic geometry: words is even whenever
  // in_c > 32 is a multiple of 64, and always for the common power-of-two
  // channel counts): merge each tap's word pairs straight into the panel's
  // u64 lanes, walking k-blocks as the lane index wraps. Each destination
  // word is written exactly once -- no staging buffer, no memset.
  if (words % 2 == 0) {
    for (int r = 0; r < tile_rows; ++r) {
      const std::int64_t row = row0 + r;
      if (row >= ind.rows()) {
        BGemmZeroLhsRow(k_blocks, r, tile_rows, dst);
        continue;
      }
      const std::int32_t* offs = ind.row(row);
      std::uint64_t* drow = dst + static_cast<std::int64_t>(r) * kBgemmKWords64;
      int lane = 0;  // u64 lane within the current k-block row [0, 8)
      for (int t = 0; t < taps; ++t) {
        const std::int32_t off = offs[t];
        const TBitpacked* src = off < 0 ? zero_row : input + off;
        for (int wi = 0; wi < words; wi += 2) {
          drow[lane] = static_cast<std::uint64_t>(src[wi]) |
                       static_cast<std::uint64_t>(src[wi + 1]) << 32;
          if (++lane == kBgemmKWords64) {
            lane = 0;
            drow += kb_stride;
          }
        }
      }
      if (lane != 0) {  // zero the k-padding lanes of the last block
        for (; lane < kBgemmKWords64; ++lane) drow[lane] = 0;
      }
    }
    return;
  }

  // Odd-words path: gather the taps of one logical patch row into a
  // contiguous stack staging buffer (a tiny, cache-hot im2col of exactly
  // one row), then pack it with the same destination-major row packer as
  // the contiguous LHS path.
  constexpr int kStageWords = 1024;
  if (kw <= kStageWords) {
    TBitpacked stage[kStageWords];
    for (int r = 0; r < tile_rows; ++r) {
      const std::int64_t row = row0 + r;
      if (row >= ind.rows()) {
        BGemmZeroLhsRow(k_blocks, r, tile_rows, dst);
        continue;
      }
      const std::int32_t* offs = ind.row(row);
      TBitpacked* sp = stage;
      for (int t = 0; t < taps; ++t, sp += words) {
        const std::int32_t off = offs[t];
        const TBitpacked* src = off < 0 ? zero_row : input + off;
        for (int wi = 0; wi < words; ++wi) sp[wi] = src[wi];
      }
      BGemmPackLhsRow(stage, kw, k_blocks, r, tile_rows, dst);
    }
    return;
  }

  // Generic fallback for giant patch rows: scatter word-by-word.
  std::memset(dst, 0,
              static_cast<std::size_t>(k_blocks) * tile_rows * kBgemmKWords64 *
                  sizeof(std::uint64_t));
  for (int r = 0; r < tile_rows; ++r) {
    const std::int64_t row = row0 + r;
    if (row >= ind.rows()) break;
    const std::int32_t* offs = ind.row(row);
    int w = 0;  // word index within the logical patch row
    for (int t = 0; t < taps; ++t) {
      const std::int32_t off = offs[t];
      const TBitpacked* src = off < 0 ? zero_row : input + off;
      for (int wi = 0; wi < words; ++wi, ++w) {
        const int kb = w / 8;
        const int w64 = (w % 8) / 2;
        const int half = w % 2;
        dst[(static_cast<std::int64_t>(kb) * tile_rows + r) * kBgemmKWords64 +
            w64] |= static_cast<std::uint64_t>(src[wi]) << (half * 32);
      }
    }
  }
}

IndirectionBuffer::IndirectionBuffer(const TBitpacked* input,
                                     const Conv2DGeometry& g) {
  const IndirectionOffsets offsets(g);
  words_ = offsets.words();
  taps_ = offsets.taps();
  rows_ = static_cast<int>(offsets.rows());
  zero_row_.assign(words_, 0);  // 0 bits = +1.0 one-padding
  pointers_.resize(static_cast<std::size_t>(rows_) * taps_);
  const std::int32_t* off = offsets.row(0);
  for (std::size_t i = 0; i < pointers_.size(); ++i) {
    pointers_[i] = off[i] < 0 ? zero_row_.data() : input + off[i];
  }
}

void IndirectBGemm(const IndirectionBuffer& ind, const TBitpacked* weight_rows,
                   int n, int k_bits, std::int32_t* out, int ldc) {
  LCE_TRACE_SCOPE_CAT("bgemm/indirect_compute", "gemm");
  static telemetry::Metric* macs =
      telemetry::MetricsRegistry::Global().Counter("bgemm.binary_macs");
  macs->Add(static_cast<std::int64_t>(ind.rows()) * n * k_bits);
  const int taps = ind.taps();
  const int words = ind.words();
  const int row_words = taps * words;

  // 1x4 output-channel blocking: each loaded activation word is reused
  // against four weight rows.
  for (int r = 0; r < ind.rows(); ++r) {
    const TBitpacked* const* tap_ptrs =
        ind.data() + static_cast<std::size_t>(r) * taps;
    int n0 = 0;
    for (; n0 + 4 <= n; n0 += 4) {
      std::int32_t acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
      const TBitpacked* w0 = weight_rows + static_cast<std::int64_t>(n0) * row_words;
      const TBitpacked* w1 = w0 + row_words;
      const TBitpacked* w2 = w1 + row_words;
      const TBitpacked* w3 = w2 + row_words;
      int wi = 0;
      for (int t = 0; t < taps; ++t) {
        const TBitpacked* a = tap_ptrs[t];
        for (int w = 0; w < words; ++w, ++wi) {
          const TBitpacked av = a[w];
          acc0 += std::popcount(av ^ w0[wi]);
          acc1 += std::popcount(av ^ w1[wi]);
          acc2 += std::popcount(av ^ w2[wi]);
          acc3 += std::popcount(av ^ w3[wi]);
        }
      }
      std::int32_t* o = out + static_cast<std::int64_t>(r) * ldc + n0;
      o[0] = k_bits - 2 * acc0;
      o[1] = k_bits - 2 * acc1;
      o[2] = k_bits - 2 * acc2;
      o[3] = k_bits - 2 * acc3;
    }
    for (; n0 < n; ++n0) {
      std::int32_t acc = 0;
      const TBitpacked* wr =
          weight_rows + static_cast<std::int64_t>(n0) * row_words;
      int wi = 0;
      for (int t = 0; t < taps; ++t) {
        const TBitpacked* a = tap_ptrs[t];
        for (int w = 0; w < words; ++w, ++wi) {
          acc += std::popcount(a[w] ^ wr[wi]);
        }
      }
      out[static_cast<std::int64_t>(r) * ldc + n0] = k_bits - 2 * acc;
    }
  }
}

}  // namespace lce::gemm
