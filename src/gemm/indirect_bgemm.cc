#include "gemm/indirect_bgemm.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>

#include "core/macros.h"
#include "gemm/bgemm.h"
#include "telemetry/metrics.h"
#include "telemetry/tracer.h"

namespace lce::gemm {

IndirectionOffsets::IndirectionOffsets(const Conv2DGeometry& g)
    : IndirectionOffsets(g, BitpackedWords(g.in_c)) {}

IndirectionOffsets::IndirectionOffsets(const Conv2DGeometry& g,
                                       int elems_per_pixel) {
  words_ = elems_per_pixel;
  taps_ = g.filter_h * g.filter_w;
  const int out_h = g.out_h(), out_w = g.out_w();
  rows_ = static_cast<std::int64_t>(g.batch) * out_h * out_w;
  // Offsets are stored as int32 element indices; any input addressable
  // within that range is far beyond the resource limits of the
  // untrusted-model path, so this only guards the trusted
  // standalone-kernel API.
  LCE_CHECK(static_cast<std::int64_t>(g.batch) * g.in_h * g.in_w * words_ <=
            std::numeric_limits<std::int32_t>::max());
  offsets_.resize(static_cast<std::size_t>(rows_) * taps_);

  const int pad_h = g.pad_h_begin(), pad_w = g.pad_w_begin();
  std::size_t idx = 0;
  for (int b = 0; b < g.batch; ++b) {
    for (int oy = 0; oy < out_h; ++oy) {
      for (int ox = 0; ox < out_w; ++ox) {
        const int iy0 = oy * g.stride_h - pad_h;
        const int ix0 = ox * g.stride_w - pad_w;
        for (int ky = 0; ky < g.filter_h; ++ky) {
          const int iy = iy0 + ky;
          for (int kx = 0; kx < g.filter_w; ++kx) {
            const int ix = ix0 + kx;
            if (iy < 0 || iy >= g.in_h || ix < 0 || ix >= g.in_w) {
              offsets_[idx++] = kPaddedTap;
            } else {
              offsets_[idx++] = static_cast<std::int32_t>(
                  ((static_cast<std::int64_t>(b) * g.in_h + iy) * g.in_w + ix) *
                  words_);
            }
          }
        }
      }
    }
  }
}

IndirectionBuffer::IndirectionBuffer(const TBitpacked* input,
                                     const Conv2DGeometry& g) {
  const IndirectionOffsets offsets(g);
  words_ = offsets.words();
  taps_ = offsets.taps();
  rows_ = static_cast<int>(offsets.rows());
  zero_row_.assign(words_, 0);  // 0 bits = +1.0 one-padding
  pointers_.resize(static_cast<std::size_t>(rows_) * taps_);
  const std::int32_t* off = offsets.row(0);
  for (std::size_t i = 0; i < pointers_.size(); ++i) {
    pointers_[i] = off[i] < 0 ? zero_row_.data() : input + off[i];
  }
}

void IndirectBGemm(const IndirectionBuffer& ind, const TBitpacked* weight_rows,
                   int n, int k_bits, std::int32_t* out, int ldc) {
  LCE_TRACE_SCOPE_CAT("bgemm/indirect_compute", "gemm");
  static telemetry::Metric* macs =
      telemetry::MetricsRegistry::Global().Counter("bgemm.binary_macs");
  macs->Add(static_cast<std::int64_t>(ind.rows()) * n * k_bits);
  const int taps = ind.taps();
  const int words = ind.words();
  const int row_words = taps * words;

  // 1x4 output-channel blocking: each loaded activation word is reused
  // against four weight rows.
  for (int r = 0; r < ind.rows(); ++r) {
    const TBitpacked* const* tap_ptrs =
        ind.data() + static_cast<std::size_t>(r) * taps;
    int n0 = 0;
    for (; n0 + 4 <= n; n0 += 4) {
      std::int32_t acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
      const TBitpacked* w0 = weight_rows + static_cast<std::int64_t>(n0) * row_words;
      const TBitpacked* w1 = w0 + row_words;
      const TBitpacked* w2 = w1 + row_words;
      const TBitpacked* w3 = w2 + row_words;
      int wi = 0;
      for (int t = 0; t < taps; ++t) {
        const TBitpacked* a = tap_ptrs[t];
        for (int w = 0; w < words; ++w, ++wi) {
          const TBitpacked av = a[w];
          acc0 += std::popcount(av ^ w0[wi]);
          acc1 += std::popcount(av ^ w1[wi]);
          acc2 += std::popcount(av ^ w2[wi]);
          acc3 += std::popcount(av ^ w3[wi]);
        }
      }
      std::int32_t* o = out + static_cast<std::int64_t>(r) * ldc + n0;
      o[0] = k_bits - 2 * acc0;
      o[1] = k_bits - 2 * acc1;
      o[2] = k_bits - 2 * acc2;
      o[3] = k_bits - 2 * acc3;
    }
    for (; n0 < n; ++n0) {
      std::int32_t acc = 0;
      const TBitpacked* wr =
          weight_rows + static_cast<std::int64_t>(n0) * row_words;
      int wi = 0;
      for (int t = 0; t < taps; ++t) {
        const TBitpacked* a = tap_ptrs[t];
        for (int w = 0; w < words; ++w, ++wi) {
          acc += std::popcount(a[w] ^ wr[wi]);
        }
      }
      out[static_cast<std::int64_t>(r) * ldc + n0] = k_bits - 2 * acc;
    }
  }
}

}  // namespace lce::gemm
