// Baseline binary-GEMM strategies reimplementing the *kernel designs* of the
// frameworks the paper compares against in Figure 4. These are faithful to
// the strategies, not the binaries:
//
//  * DaBnnStyleBGemm -- a direct binary GEMM in the style of DaBNN: decent
//    register blocking and 64-bit hardware popcounts, but no Ruy-style panel
//    packing (the RHS is traversed in row-major order, so large tiles fall
//    out of cache), no SIMD popcount kernel and no multi-threading (the
//    paper notes DaBNN does not support multi-threaded inference).
//
//  * TvmStyleBGemm -- a generic compiler-generated kernel in the style of
//    TVM/Riptide codegen: a plain loop nest over 32-bit words with
//    __builtin_popcount, no hand blocking or packing; whatever speed it has
//    comes from compiler auto-vectorization.
//
//  * BmxnetStyleBGemm -- BMXNet's approach: im2col + a simple C++ loop using
//    builtin popcount on single words with no blocking at all ("compiles to
//    machine code significantly slower than optimised assembly kernels").
//
// All share the BGEMM contract: out[i][j] = k_bits - 2*popcount(l_i ^ r_j).
#ifndef LCE_GEMM_BASELINES_H_
#define LCE_GEMM_BASELINES_H_

#include <cstdint>

#include "core/types.h"

namespace lce::gemm {

void DaBnnStyleBGemm(const TBitpacked* lhs, int m, const TBitpacked* rhs,
                     int n, int kw, int k_bits, std::int32_t* out, int ldc);

void TvmStyleBGemm(const TBitpacked* lhs, int m, const TBitpacked* rhs, int n,
                   int kw, int k_bits, std::int32_t* out, int ldc);

void BmxnetStyleBGemm(const TBitpacked* lhs, int m, const TBitpacked* rhs,
                      int n, int kw, int k_bits, std::int32_t* out, int ldc);

}  // namespace lce::gemm

#endif  // LCE_GEMM_BASELINES_H_
