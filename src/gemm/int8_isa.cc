#include "gemm/int8_isa.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace lce::gemm {
namespace {

#if defined(__x86_64__) || defined(__i386__)

// XCR0 via raw xgetbv: <immintrin.h>'s _xgetbv needs -mxsave, and CPUID
// already guaranteed OSXSAVE before this is called.
unsigned long long Xcr0() {
  unsigned int lo = 0, hi = 0;
  __asm__ volatile("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0));
  return (static_cast<unsigned long long>(hi) << 32) | lo;
}

bool OsSavesYmm() {
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  if (!(ecx & (1u << 27))) return false;  // OSXSAVE
  return (Xcr0() & 0x6) == 0x6;           // xmm + ymm state
}

bool OsSavesZmm() {
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  if (!(ecx & (1u << 27))) return false;   // OSXSAVE
  return (Xcr0() & 0xe6) == 0xe6;          // xmm + ymm + opmask + zmm state
}

// Leaf 7 subleaf 0: EBX bit 5 = AVX2, EBX bit 30 = AVX512BW,
// ECX bit 11 = AVX512_VNNI.
bool CpuHasAvx2() {
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) return false;
  return (ebx & (1u << 5)) != 0 && OsSavesYmm();
}

bool CpuHasVnni() {
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) return false;
  // The VNNI kernel also assumes AVX-512BW-era 512-bit integer ops.
  if (!(ebx & (1u << 30))) return false;  // AVX512BW
  if (!(ecx & (1u << 11))) return false;  // AVX512_VNNI
  return OsSavesZmm();
}

#endif  // x86

std::atomic<int> g_tier_override{0};

int ParseForcedTier(const char* s) {
  if (s == nullptr || *s == '\0') return 0;
  if (std::strcmp(s, "scalar") == 0) return static_cast<int>(Int8Tier::kScalar);
  if (std::strcmp(s, "widened") == 0) {
    return static_cast<int>(Int8Tier::kWidened);
  }
  if (std::strcmp(s, "avx2dot") == 0) {
    return static_cast<int>(Int8Tier::kAvx2Dot);
  }
  if (std::strcmp(s, "neondot") == 0 || std::strcmp(s, "sdot") == 0) {
    return static_cast<int>(Int8Tier::kNeonDot);
  }
  if (std::strcmp(s, "vnni") == 0) return static_cast<int>(Int8Tier::kVnni);
  return 0;  // unknown: ignored, BestInt8Tier() decides
}

}  // namespace

bool Int8TierAvailable(Int8Tier tier) {
  switch (tier) {
    case Int8Tier::kScalar:
    case Int8Tier::kWidened:
      return true;
    case Int8Tier::kAvx2Dot:
#if defined(__AVX2__)
      return CpuHasAvx2();
#else
      return false;
#endif
    case Int8Tier::kNeonDot:
#if defined(__ARM_NEON) && defined(__ARM_FEATURE_DOTPROD)
      return true;
#else
      return false;
#endif
    case Int8Tier::kVnni:
#if defined(__AVX512VNNI__)
      return CpuHasVnni();
#else
      return false;
#endif
  }
  return false;
}

Int8Tier BestInt8Tier() {
  if (Int8TierAvailable(Int8Tier::kVnni)) return Int8Tier::kVnni;
  if (Int8TierAvailable(Int8Tier::kNeonDot)) return Int8Tier::kNeonDot;
#if defined(__AVX512BW__)
  // 512-bit widened madd beats the 8-wide masked AVX2 dot (see the header
  // comment and costmodel/x86_int8.h).
  return Int8Tier::kWidened;
#else
  if (Int8TierAvailable(Int8Tier::kAvx2Dot)) return Int8Tier::kAvx2Dot;
  return Int8Tier::kWidened;
#endif
}

Int8Tier SelectInt8Tier() {
  const int hook = g_tier_override.load(std::memory_order_relaxed);
  if (hook != 0) {
    const auto t = static_cast<Int8Tier>(hook);
    if (Int8TierAvailable(t)) return t;
  }
  static const int forced = ParseForcedTier(std::getenv("LCE_FORCE_ISA"));
  if (forced != 0) {
    const auto t = static_cast<Int8Tier>(forced);
    if (Int8TierAvailable(t)) return t;
  }
  static const Int8Tier best = BestInt8Tier();
  return best;
}

void SetInt8TierOverrideForTest(int tier) {
  g_tier_override.store(tier, std::memory_order_relaxed);
}

const char* Int8TierName(Int8Tier tier) {
  switch (tier) {
    case Int8Tier::kScalar:
      return "scalar";
    case Int8Tier::kWidened:
      return "widened";
    case Int8Tier::kAvx2Dot:
      return "avx2dot";
    case Int8Tier::kNeonDot:
      return "neondot";
    case Int8Tier::kVnni:
      return "vnni";
  }
  return "unknown";
}

bool Int8TierIsDotProduct(Int8Tier tier) {
  return tier == Int8Tier::kAvx2Dot || tier == Int8Tier::kNeonDot ||
         tier == Int8Tier::kVnni;
}

}  // namespace lce::gemm
