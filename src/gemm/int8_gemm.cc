#include "gemm/int8_gemm.h"

#include <algorithm>
#include <cstring>

#ifdef __AVX2__
#include <immintrin.h>
#endif

#include "core/macros.h"

namespace lce::gemm {
namespace {

int KBlocks(int k) { return (k + kInt8Kc - 1) / kInt8Kc; }

// Scalar kernel on biased-LHS panels: acc = sum (uint8 a)*(int8 b), exact.
void KernelScalar(const std::int8_t* apanel, const std::int8_t* bpanel,
                  int k_blocks, std::int32_t acc_out[kInt8Mr][kInt8Nr]) {
  std::int32_t acc[kInt8Mr][kInt8Nr] = {};
  for (int kb = 0; kb < k_blocks; ++kb) {
    const auto* a = reinterpret_cast<const std::uint8_t*>(
        apanel + static_cast<std::int64_t>(kb) * kInt8Mr * kInt8Kc);
    const std::int8_t* b = bpanel + static_cast<std::int64_t>(kb) * kInt8Nr * kInt8Kc;
    for (int i = 0; i < kInt8Mr; ++i) {
      for (int j = 0; j < kInt8Nr; ++j) {
        std::int32_t s = 0;
        for (int c = 0; c < kInt8Kc; ++c) {
          s += static_cast<std::int32_t>(a[i * kInt8Kc + c]) *
               static_cast<std::int32_t>(b[j * kInt8Kc + c]);
        }
        acc[i][j] += s;
      }
    }
  }
  std::memcpy(acc_out, acc, sizeof(acc));
}

#if defined(__AVX512BW__)
#define LCE_INT8_GEMM_AVX512 1
// AVX-512BW kernel: each 32-byte K-chunk widens to one 512-bit vector of 32
// int16 lanes, so a single madd_epi16 performs 32 exact MACs -- the closest
// x86 analogue of the paper's sdot path without VNNI hardware.
void KernelAvx512(const std::int8_t* apanel, const std::int8_t* bpanel,
                  int k_blocks, std::int32_t acc_out[kInt8Mr][kInt8Nr]) {
  __m512i acc[kInt8Mr][kInt8Nr];
  for (int i = 0; i < kInt8Mr; ++i)
    for (int j = 0; j < kInt8Nr; ++j) acc[i][j] = _mm512_setzero_si512();

  for (int kb = 0; kb < k_blocks; ++kb) {
    const std::int8_t* a = apanel + static_cast<std::int64_t>(kb) * kInt8Mr * kInt8Kc;
    const std::int8_t* b = bpanel + static_cast<std::int64_t>(kb) * kInt8Nr * kInt8Kc;
    __m512i a16[kInt8Mr];
    for (int i = 0; i < kInt8Mr; ++i) {
      a16[i] = _mm512_cvtepu8_epi16(_mm256_load_si256(
          reinterpret_cast<const __m256i*>(a + i * kInt8Kc)));
    }
    for (int j = 0; j < kInt8Nr; ++j) {
      const __m512i b16 = _mm512_cvtepi8_epi16(_mm256_load_si256(
          reinterpret_cast<const __m256i*>(b + j * kInt8Kc)));
      for (int i = 0; i < kInt8Mr; ++i) {
        acc[i][j] =
            _mm512_add_epi32(acc[i][j], _mm512_madd_epi16(a16[i], b16));
      }
    }
  }
  for (int i = 0; i < kInt8Mr; ++i) {
    for (int j = 0; j < kInt8Nr; ++j) {
      alignas(64) std::int32_t lanes[16];
      _mm512_store_si512(lanes, acc[i][j]);
      std::int32_t s = 0;
      for (int l = 0; l < 16; ++l) s += lanes[l];
      acc_out[i][j] = s;
    }
  }
}
#endif  // __AVX512BW__

#if defined(__AVX2__) && !defined(LCE_INT8_GEMM_AVX512)
// Exact widened 16-bit multiply-add kernel (plays the role of the paper's
// sdot instruction): 2x4 tile, 32 bytes of K per step.
void KernelAvx2(const std::int8_t* apanel, const std::int8_t* bpanel,
                int k_blocks, std::int32_t acc_out[kInt8Mr][kInt8Nr]) {
  __m256i acc[kInt8Mr][kInt8Nr];
  for (int i = 0; i < kInt8Mr; ++i)
    for (int j = 0; j < kInt8Nr; ++j) acc[i][j] = _mm256_setzero_si256();

  for (int kb = 0; kb < k_blocks; ++kb) {
    const std::int8_t* a = apanel + static_cast<std::int64_t>(kb) * kInt8Mr * kInt8Kc;
    const std::int8_t* b = bpanel + static_cast<std::int64_t>(kb) * kInt8Nr * kInt8Kc;
    __m256i a16[kInt8Mr][2];
    for (int i = 0; i < kInt8Mr; ++i) {
      const __m256i av =
          _mm256_load_si256(reinterpret_cast<const __m256i*>(a + i * kInt8Kc));
      a16[i][0] = _mm256_cvtepu8_epi16(_mm256_castsi256_si128(av));
      a16[i][1] = _mm256_cvtepu8_epi16(_mm256_extracti128_si256(av, 1));
    }
    for (int j = 0; j < kInt8Nr; ++j) {
      const __m256i bv =
          _mm256_load_si256(reinterpret_cast<const __m256i*>(b + j * kInt8Kc));
      const __m256i b0 = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(bv));
      const __m256i b1 = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(bv, 1));
      for (int i = 0; i < kInt8Mr; ++i) {
        acc[i][j] = _mm256_add_epi32(acc[i][j],
                                     _mm256_madd_epi16(a16[i][0], b0));
        acc[i][j] = _mm256_add_epi32(acc[i][j],
                                     _mm256_madd_epi16(a16[i][1], b1));
      }
    }
  }
  for (int i = 0; i < kInt8Mr; ++i) {
    for (int j = 0; j < kInt8Nr; ++j) {
      alignas(32) std::int32_t lanes[8];
      _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc[i][j]);
      std::int32_t s = 0;
      for (int l = 0; l < 8; ++l) s += lanes[l];
      acc_out[i][j] = s;
    }
  }
}
#endif  // __AVX2__

}  // namespace

void Int8GemmPackLhsTile(const std::int8_t* src, int n, int k, int row0,
                         int rows, int k_blocks, bool bias, std::int8_t* dst) {
  const std::int8_t pad = bias ? static_cast<std::int8_t>(0x80) : 0;
  std::memset(dst, pad,
              static_cast<std::size_t>(k_blocks) * rows * kInt8Kc);
  for (int r = 0; r < rows; ++r) {
    const int row = row0 + r;
    if (row >= n) continue;
    const std::int8_t* s = src + static_cast<std::int64_t>(row) * k;
    for (int kk = 0; kk < k; ++kk) {
      const int kb = kk / kInt8Kc;
      std::int8_t v = s[kk];
      if (bias) v = static_cast<std::int8_t>(v ^ 0x80);
      dst[(static_cast<std::int64_t>(kb) * rows + r) * kInt8Kc +
          (kk % kInt8Kc)] = v;
    }
  }
}

void Int8ComputeTile(const std::int8_t* apanel, const std::int8_t* bpanel,
                     int k_blocks, KernelProfile profile,
                     std::int32_t acc[kInt8Mr][kInt8Nr]) {
  if (profile == KernelProfile::kSimd) {
#if defined(LCE_INT8_GEMM_AVX512)
    KernelAvx512(apanel, bpanel, k_blocks, acc);
    return;
#elif defined(__AVX2__)
    KernelAvx2(apanel, bpanel, k_blocks, acc);
    return;
#endif
  }
  KernelScalar(apanel, bpanel, k_blocks, acc);
}

void Int8ComputeBlock(const std::int8_t* apanels, std::int64_t a_elems,
                      const PackedInt8Matrix& rhs, KernelProfile profile,
                      int block_tiles, int block_rows, std::int32_t* out,
                      int ldc) {
  const int k_blocks = rhs.k_blocks();
  const int n = rhs.n();
  std::int32_t acc[kInt8Mr][kInt8Nr];
  for (int nt = 0; nt < rhs.num_tiles(); ++nt) {
    const int col0 = nt * kInt8Nr;
    const int cols = std::min(kInt8Nr, n - col0);
    const std::int8_t* btile = rhs.tile(nt);
    for (int t = 0; t < block_tiles; ++t) {
      const int row0 = t * kInt8Mr;
      const int rows = std::min(kInt8Mr, block_rows - row0);
      Int8ComputeTile(apanels + t * a_elems, btile, k_blocks, profile, acc);
      for (int i = 0; i < rows; ++i) {
        std::int32_t* o = out + static_cast<std::int64_t>(row0 + i) * ldc + col0;
        for (int j = 0; j < cols; ++j) {
          // Remove the +128 activation bias: acc was computed on
          // (a+128, b), so subtract 128 * rowsum(b).
          o[j] = acc[i][j] - 128 * rhs.row_sums()[col0 + j];
        }
      }
    }
  }
}

PackedInt8Matrix::PackedInt8Matrix(const std::int8_t* rows, int n, int k)
    : n_(n), k_(k), k_blocks_(KBlocks(k)) {
  num_tiles_ = (n + kInt8Nr - 1) / kInt8Nr;
  buf_ = AlignedBuffer(static_cast<std::size_t>(num_tiles_) * tile_elems());
  auto* d = reinterpret_cast<std::int8_t*>(buf_.data());
  for (int t = 0; t < num_tiles_; ++t) {
    Int8GemmPackLhsTile(rows, n, k, t * kInt8Nr, kInt8Nr, k_blocks_,
                        /*bias=*/false,
                        d + static_cast<std::int64_t>(t) * tile_elems());
  }
  row_sums_.resize(n);
  for (int r = 0; r < n; ++r) {
    std::int32_t s = 0;
    for (int kk = 0; kk < k; ++kk) s += rows[static_cast<std::int64_t>(r) * k + kk];
    row_sums_[r] = s;
  }
}

void Int8Gemm(const std::int8_t* lhs, int m, const PackedInt8Matrix& rhs,
              std::int32_t* out, int ldc, Context& ctx) {
  const int k = rhs.k();
  const int n = rhs.n();
  const int k_blocks = rhs.k_blocks();
  const int m_tiles = (m + kInt8Mr - 1) / kInt8Mr;
  const std::int64_t a_tile_elems =
      static_cast<std::int64_t>(k_blocks) * kInt8Mr * kInt8Kc;

  auto* apanels = reinterpret_cast<std::int8_t*>(
      ctx.Scratch(0, static_cast<std::size_t>(m_tiles) * a_tile_elems));
  ctx.pool().ParallelFor(m_tiles, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t t = begin; t < end; ++t) {
      Int8GemmPackLhsTile(lhs, m, k, static_cast<int>(t) * kInt8Mr, kInt8Mr,
                          k_blocks, /*bias=*/true, apanels + t * a_tile_elems);
    }
  });

  const KernelProfile profile = ctx.profile();
  // B-tile-outer loop order for panel reuse (see float_gemm.cc).
  ctx.pool().ParallelFor(m_tiles, [&](std::int64_t begin, std::int64_t end) {
    std::int32_t acc[kInt8Mr][kInt8Nr];
    for (int nt = 0; nt < rhs.num_tiles(); ++nt) {
      const int col0 = nt * kInt8Nr;
      const int cols = std::min(kInt8Nr, n - col0);
      for (std::int64_t mt = begin; mt < end; ++mt) {
        const int row0 = static_cast<int>(mt) * kInt8Mr;
        const int rows = std::min(kInt8Mr, m - row0);
        Int8ComputeTile(apanels + mt * a_tile_elems, rhs.tile(nt), k_blocks,
                        profile, acc);
        for (int i = 0; i < rows; ++i) {
          std::int32_t* o = out + static_cast<std::int64_t>(row0 + i) * ldc + col0;
          for (int j = 0; j < cols; ++j) {
            // Remove the +128 activation bias: acc was computed on
            // (a+128, b), so subtract 128 * rowsum(b).
            o[j] = acc[i][j] - 128 * rhs.row_sums()[col0 + j];
          }
        }
      }
    }
  });
}

void Int8Gemm(const std::int8_t* lhs, int m, const std::int8_t* rhs, int n,
              int k, std::int32_t* out, int ldc, Context& ctx) {
  PackedInt8Matrix packed(rhs, n, k);
  Int8Gemm(lhs, m, packed, out, ldc, ctx);
}

}  // namespace lce::gemm
