#include "gemm/int8_gemm.h"

#include <algorithm>
#include <cstring>

#if defined(__AVX2__) || defined(__AVX512VNNI__)
#include <immintrin.h>
#endif
#if defined(__ARM_NEON) && defined(__ARM_FEATURE_DOTPROD)
#include <arm_neon.h>
#endif

#include "core/macros.h"

namespace lce::gemm {
namespace {

int KBlocks(int k) { return (k + kInt8Kc - 1) / kInt8Kc; }

// Scalar kernel on biased-LHS panels: acc = sum (uint8 a)*(int8 b), exact.
void KernelScalar(const std::int8_t* apanel, const std::int8_t* bpanel,
                  int k_blocks, std::int32_t acc_out[kInt8Mr][kInt8Nr]) {
  std::int32_t acc[kInt8Mr][kInt8Nr] = {};
  for (int kb = 0; kb < k_blocks; ++kb) {
    const auto* a = reinterpret_cast<const std::uint8_t*>(
        apanel + static_cast<std::int64_t>(kb) * kInt8Mr * kInt8Kc);
    const std::int8_t* b = bpanel + static_cast<std::int64_t>(kb) * kInt8Nr * kInt8Kc;
    for (int i = 0; i < kInt8Mr; ++i) {
      for (int j = 0; j < kInt8Nr; ++j) {
        std::int32_t s = 0;
        for (int c = 0; c < kInt8Kc; ++c) {
          s += static_cast<std::int32_t>(a[i * kInt8Kc + c]) *
               static_cast<std::int32_t>(b[j * kInt8Kc + c]);
        }
        acc[i][j] += s;
      }
    }
  }
  std::memcpy(acc_out, acc, sizeof(acc));
}

#if defined(__AVX512BW__)
#define LCE_INT8_GEMM_AVX512 1
// AVX-512BW kernel: each 32-byte K-chunk widens to one 512-bit vector of 32
// int16 lanes, so a single madd_epi16 performs 32 exact MACs -- the closest
// x86 analogue of the paper's sdot path without VNNI hardware.
void KernelAvx512(const std::int8_t* apanel, const std::int8_t* bpanel,
                  int k_blocks, std::int32_t acc_out[kInt8Mr][kInt8Nr]) {
  __m512i acc[kInt8Mr][kInt8Nr];
  for (int i = 0; i < kInt8Mr; ++i)
    for (int j = 0; j < kInt8Nr; ++j) acc[i][j] = _mm512_setzero_si512();

  for (int kb = 0; kb < k_blocks; ++kb) {
    const std::int8_t* a = apanel + static_cast<std::int64_t>(kb) * kInt8Mr * kInt8Kc;
    const std::int8_t* b = bpanel + static_cast<std::int64_t>(kb) * kInt8Nr * kInt8Kc;
    __m512i a16[kInt8Mr];
    for (int i = 0; i < kInt8Mr; ++i) {
      a16[i] = _mm512_cvtepu8_epi16(_mm256_load_si256(
          reinterpret_cast<const __m256i*>(a + i * kInt8Kc)));
    }
    for (int j = 0; j < kInt8Nr; ++j) {
      const __m512i b16 = _mm512_cvtepi8_epi16(_mm256_load_si256(
          reinterpret_cast<const __m256i*>(b + j * kInt8Kc)));
      for (int i = 0; i < kInt8Mr; ++i) {
        acc[i][j] =
            _mm512_add_epi32(acc[i][j], _mm512_madd_epi16(a16[i], b16));
      }
    }
  }
  for (int i = 0; i < kInt8Mr; ++i) {
    for (int j = 0; j < kInt8Nr; ++j) {
      alignas(64) std::int32_t lanes[16];
      _mm512_store_si512(lanes, acc[i][j]);
      std::int32_t s = 0;
      for (int l = 0; l < 16; ++l) s += lanes[l];
      acc_out[i][j] = s;
    }
  }
}
#endif  // __AVX512BW__

#if defined(__AVX2__) && !defined(LCE_INT8_GEMM_AVX512)
// Exact widened 16-bit multiply-add kernel (plays the role of the paper's
// sdot instruction): 2x4 tile, 32 bytes of K per step.
void KernelAvx2(const std::int8_t* apanel, const std::int8_t* bpanel,
                int k_blocks, std::int32_t acc_out[kInt8Mr][kInt8Nr]) {
  __m256i acc[kInt8Mr][kInt8Nr];
  for (int i = 0; i < kInt8Mr; ++i)
    for (int j = 0; j < kInt8Nr; ++j) acc[i][j] = _mm256_setzero_si256();

  for (int kb = 0; kb < k_blocks; ++kb) {
    const std::int8_t* a = apanel + static_cast<std::int64_t>(kb) * kInt8Mr * kInt8Kc;
    const std::int8_t* b = bpanel + static_cast<std::int64_t>(kb) * kInt8Nr * kInt8Kc;
    __m256i a16[kInt8Mr][2];
    for (int i = 0; i < kInt8Mr; ++i) {
      const __m256i av =
          _mm256_load_si256(reinterpret_cast<const __m256i*>(a + i * kInt8Kc));
      a16[i][0] = _mm256_cvtepu8_epi16(_mm256_castsi256_si128(av));
      a16[i][1] = _mm256_cvtepu8_epi16(_mm256_extracti128_si256(av, 1));
    }
    for (int j = 0; j < kInt8Nr; ++j) {
      const __m256i bv =
          _mm256_load_si256(reinterpret_cast<const __m256i*>(b + j * kInt8Kc));
      const __m256i b0 = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(bv));
      const __m256i b1 = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(bv, 1));
      for (int i = 0; i < kInt8Mr; ++i) {
        acc[i][j] = _mm256_add_epi32(acc[i][j],
                                     _mm256_madd_epi16(a16[i][0], b0));
        acc[i][j] = _mm256_add_epi32(acc[i][j],
                                     _mm256_madd_epi16(a16[i][1], b1));
      }
    }
  }
  for (int i = 0; i < kInt8Mr; ++i) {
    for (int j = 0; j < kInt8Nr; ++j) {
      alignas(32) std::int32_t lanes[8];
      _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc[i][j]);
      std::int32_t s = 0;
      for (int l = 0; l < 8; ++l) s += lanes[l];
      acc_out[i][j] = s;
    }
  }
}
#endif  // __AVX2__

}  // namespace

void Int8GemmPackLhsTile(const std::int8_t* src, int n, int k, int row0,
                         int rows, int k_blocks, bool bias, std::int8_t* dst) {
  const std::int8_t pad = bias ? static_cast<std::int8_t>(0x80) : 0;
  std::memset(dst, pad,
              static_cast<std::size_t>(k_blocks) * rows * kInt8Kc);
  for (int r = 0; r < rows; ++r) {
    const int row = row0 + r;
    if (row >= n) continue;
    const std::int8_t* s = src + static_cast<std::int64_t>(row) * k;
    for (int kk = 0; kk < k; ++kk) {
      const int kb = kk / kInt8Kc;
      std::int8_t v = s[kk];
      if (bias) v = static_cast<std::int8_t>(v ^ 0x80);
      dst[(static_cast<std::int64_t>(kb) * rows + r) * kInt8Kc +
          (kk % kInt8Kc)] = v;
    }
  }
}

void Int8ComputeTile(const std::int8_t* apanel, const std::int8_t* bpanel,
                     int k_blocks, KernelProfile profile,
                     std::int32_t acc[kInt8Mr][kInt8Nr]) {
  if (profile == KernelProfile::kSimd) {
#if defined(LCE_INT8_GEMM_AVX512)
    KernelAvx512(apanel, bpanel, k_blocks, acc);
    return;
#elif defined(__AVX2__)
    KernelAvx2(apanel, bpanel, k_blocks, acc);
    return;
#endif
  }
  KernelScalar(apanel, bpanel, k_blocks, acc);
}

void Int8ComputeBlock(const std::int8_t* apanels, std::int64_t a_elems,
                      const PackedInt8Matrix& rhs, KernelProfile profile,
                      int block_tiles, int block_rows, std::int32_t* out,
                      int ldc) {
  const int k_blocks = rhs.k_blocks();
  const int n = rhs.n();
  std::int32_t acc[kInt8Mr][kInt8Nr];
  for (int nt = 0; nt < rhs.num_tiles(); ++nt) {
    const int col0 = nt * kInt8Nr;
    const int cols = std::min(kInt8Nr, n - col0);
    const std::int8_t* btile = rhs.tile(nt);
    for (int t = 0; t < block_tiles; ++t) {
      const int row0 = t * kInt8Mr;
      const int rows = std::min(kInt8Mr, block_rows - row0);
      Int8ComputeTile(apanels + t * a_elems, btile, k_blocks, profile, acc);
      for (int i = 0; i < rows; ++i) {
        std::int32_t* o = out + static_cast<std::int64_t>(row0 + i) * ldc + col0;
        for (int j = 0; j < cols; ++j) {
          // Remove the +128 activation bias: acc was computed on
          // (a+128, b), so subtract 128 * rowsum(b).
          o[j] = acc[i][j] - 128 * rhs.row_sums()[col0 + j];
        }
      }
    }
  }
}

PackedInt8Matrix::PackedInt8Matrix(const std::int8_t* rows, int n, int k)
    : n_(n), k_(k), k_blocks_(KBlocks(k)) {
  num_tiles_ = (n + kInt8Nr - 1) / kInt8Nr;
  buf_ = AlignedBuffer(static_cast<std::size_t>(num_tiles_) * tile_elems());
  auto* d = reinterpret_cast<std::int8_t*>(buf_.data());
  for (int t = 0; t < num_tiles_; ++t) {
    Int8GemmPackLhsTile(rows, n, k, t * kInt8Nr, kInt8Nr, k_blocks_,
                        /*bias=*/false,
                        d + static_cast<std::int64_t>(t) * tile_elems());
  }
  row_sums_.resize(n);
  for (int r = 0; r < n; ++r) {
    std::int32_t s = 0;
    for (int kk = 0; kk < k; ++kk) s += rows[static_cast<std::int64_t>(r) * k + kk];
    row_sums_[r] = s;
  }
}

void Int8Gemm(const std::int8_t* lhs, int m, const PackedInt8Matrix& rhs,
              std::int32_t* out, int ldc, Context& ctx) {
  const int k = rhs.k();
  const int n = rhs.n();
  const int k_blocks = rhs.k_blocks();
  const int m_tiles = (m + kInt8Mr - 1) / kInt8Mr;
  const std::int64_t a_tile_elems =
      static_cast<std::int64_t>(k_blocks) * kInt8Mr * kInt8Kc;

  auto* apanels = reinterpret_cast<std::int8_t*>(
      ctx.Scratch(0, static_cast<std::size_t>(m_tiles) * a_tile_elems));
  ctx.pool().ParallelFor(m_tiles, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t t = begin; t < end; ++t) {
      Int8GemmPackLhsTile(lhs, m, k, static_cast<int>(t) * kInt8Mr, kInt8Mr,
                          k_blocks, /*bias=*/true, apanels + t * a_tile_elems);
    }
  });

  const KernelProfile profile = ctx.profile();
  // B-tile-outer loop order for panel reuse (see float_gemm.cc).
  ctx.pool().ParallelFor(m_tiles, [&](std::int64_t begin, std::int64_t end) {
    std::int32_t acc[kInt8Mr][kInt8Nr];
    for (int nt = 0; nt < rhs.num_tiles(); ++nt) {
      const int col0 = nt * kInt8Nr;
      const int cols = std::min(kInt8Nr, n - col0);
      for (std::int64_t mt = begin; mt < end; ++mt) {
        const int row0 = static_cast<int>(mt) * kInt8Mr;
        const int rows = std::min(kInt8Mr, m - row0);
        Int8ComputeTile(apanels + mt * a_tile_elems, rhs.tile(nt), k_blocks,
                        profile, acc);
        for (int i = 0; i < rows; ++i) {
          std::int32_t* o = out + static_cast<std::int64_t>(row0 + i) * ldc + col0;
          for (int j = 0; j < cols; ++j) {
            // Remove the +128 activation bias: acc was computed on
            // (a+128, b), so subtract 128 * rowsum(b).
            o[j] = acc[i][j] - 128 * rhs.row_sums()[col0 + j];
          }
        }
      }
    }
  });
}

void Int8Gemm(const std::int8_t* lhs, int m, const std::int8_t* rhs, int n,
              int k, std::int32_t* out, int ldc, Context& ctx) {
  PackedInt8Matrix packed(rhs, n, k);
  Int8Gemm(lhs, m, packed, out, ldc, ctx);
}

// ---------------------------------------------------------------------------
// Dot-product tier kernels. All are panel-outer / row-inner: one weight
// panel stays register/L1-resident across every staged row of the block
// before the next panel streams in (weight-stationary).
// ---------------------------------------------------------------------------

namespace {

// Portable reference for the dot-panel layout: raw signed dot, exact. Also
// the fallback when the requested SIMD kernel is not compiled in.
void DotPanelPortable(const std::int8_t* arows, int lda,
                      const std::int8_t* panel, int k_groups, int col0,
                      int cols, int block_rows, std::int32_t* out, int ldc) {
  for (int r = 0; r < block_rows; ++r) {
    const std::int8_t* a = arows + static_cast<std::int64_t>(r) * lda;
    std::int32_t* o = out + static_cast<std::int64_t>(r) * ldc + col0;
    for (int j = 0; j < cols; ++j) {
      std::int32_t s = 0;
      for (int g = 0; g < k_groups; ++g) {
        const std::int8_t* b =
            panel + (static_cast<std::int64_t>(g) * kInt8DotNr + j) * kInt8DotKg;
        const std::int8_t* av = a + static_cast<std::int64_t>(g) * kInt8DotKg;
        for (int c = 0; c < kInt8DotKg; ++c) {
          s += static_cast<std::int32_t>(av[c]) *
               static_cast<std::int32_t>(b[c]);
        }
      }
      o[j] = s;
    }
  }
}

#if defined(__AVX512VNNI__)
// vpdpbusd is u8 x s8: each staged 4-byte activation group gets the +128
// bias (XOR 0x80808080) before broadcasting, and the epilogue subtracts
// 128 * rowsum(w). The instruction's internal 4-product sum is at most
// 255*128*4 < 2^17, so the i32 lane accumulation is exact by construction.
// Four independent accumulator rows hide the dpbusd latency; the 64-byte B
// line is loaded once per K-group and shared across the quartet.
void DotPanelVnni(const std::int8_t* arows, int lda, const std::int8_t* panel,
                  int k_groups, const std::int32_t* row_sums, int col0,
                  int cols, int block_rows, std::int32_t* out, int ldc) {
  const __mmask16 mask = cols == kInt8DotNr
                             ? static_cast<__mmask16>(0xffff)
                             : static_cast<__mmask16>((1u << cols) - 1);
  // row_sums is padded to a panel multiple, so the full-width load is safe
  // even on the last partial panel (the store below stays masked). mullo
  // rather than slli: GCC 12's slli expands through _mm512_undefined_epi32
  // and trips -Wmaybe-uninitialized (PR105593); this is loop-invariant
  // anyway.
  const __m512i corr = _mm512_mullo_epi32(
      _mm512_loadu_si512(reinterpret_cast<const void*>(row_sums + col0)),
      _mm512_set1_epi32(128));
  const auto bias_bcast = [](const std::int8_t* a, int g) {
    std::uint32_t w;
    std::memcpy(&w, a + static_cast<std::int64_t>(g) * kInt8DotKg, 4);
    return _mm512_set1_epi32(static_cast<int>(w ^ 0x80808080u));
  };
  int r = 0;
  for (; r + 4 <= block_rows; r += 4) {
    const std::int8_t* a0 = arows + static_cast<std::int64_t>(r) * lda;
    const std::int8_t* a1 = a0 + lda;
    const std::int8_t* a2 = a1 + lda;
    const std::int8_t* a3 = a2 + lda;
    __m512i acc0 = _mm512_setzero_si512();
    __m512i acc1 = _mm512_setzero_si512();
    __m512i acc2 = _mm512_setzero_si512();
    __m512i acc3 = _mm512_setzero_si512();
    for (int g = 0; g < k_groups; ++g) {
      const __m512i b = _mm512_load_si512(panel + static_cast<std::int64_t>(g) *
                                                      kInt8DotNr * kInt8DotKg);
      acc0 = _mm512_dpbusd_epi32(acc0, bias_bcast(a0, g), b);
      acc1 = _mm512_dpbusd_epi32(acc1, bias_bcast(a1, g), b);
      acc2 = _mm512_dpbusd_epi32(acc2, bias_bcast(a2, g), b);
      acc3 = _mm512_dpbusd_epi32(acc3, bias_bcast(a3, g), b);
    }
    std::int32_t* o = out + static_cast<std::int64_t>(r) * ldc + col0;
    _mm512_mask_storeu_epi32(o, mask, _mm512_sub_epi32(acc0, corr));
    _mm512_mask_storeu_epi32(o + ldc, mask, _mm512_sub_epi32(acc1, corr));
    _mm512_mask_storeu_epi32(o + 2 * ldc, mask, _mm512_sub_epi32(acc2, corr));
    _mm512_mask_storeu_epi32(o + 3 * ldc, mask, _mm512_sub_epi32(acc3, corr));
  }
  for (; r < block_rows; ++r) {
    const std::int8_t* a = arows + static_cast<std::int64_t>(r) * lda;
    __m512i acc = _mm512_setzero_si512();
    for (int g = 0; g < k_groups; ++g) {
      const __m512i b = _mm512_load_si512(panel + static_cast<std::int64_t>(g) *
                                                      kInt8DotNr * kInt8DotKg);
      acc = _mm512_dpbusd_epi32(acc, bias_bcast(a, g), b);
    }
    _mm512_mask_storeu_epi32(out + static_cast<std::int64_t>(r) * ldc + col0,
                             mask, _mm512_sub_epi32(acc, corr));
  }
}
#endif  // __AVX512VNNI__

#if defined(__AVX2__)
// vpmaddubsw saturates its pairwise i16 sum (biased 255 * 127 + 255 * 127
// overflows i16), so each 4-byte group is split into even and odd bytes
// first (AND with the 0x00FF / 0xFF00 i16 masks): every i16 lane then
// holds a single u8 x s8 product, |p| <= 255 * 128 = 32640 < 2^15, and no
// saturation can occur. vpmaddwd against ones widens the two
// single-product lanes into the per-channel i32 partial dot. See
// docs/KERNELS.md ("saturation semantics").
void DotPanelAvx2(const std::int8_t* arows, int lda, const std::int8_t* panel,
                  int k_groups, const std::int32_t* row_sums, int col0,
                  int cols, int block_rows, std::int32_t* out, int ldc) {
  const __m256i even_mask = _mm256_set1_epi16(0x00FF);
  const __m256i ones16 = _mm256_set1_epi16(1);
  for (int r = 0; r < block_rows; ++r) {
    const std::int8_t* a = arows + static_cast<std::int64_t>(r) * lda;
    __m256i acc_lo = _mm256_setzero_si256();
    __m256i acc_hi = _mm256_setzero_si256();
    for (int g = 0; g < k_groups; ++g) {
      const std::int8_t* b = panel + static_cast<std::int64_t>(g) *
                                         kInt8DotNr * kInt8DotKg;
      const __m256i b_lo =
          _mm256_load_si256(reinterpret_cast<const __m256i*>(b));
      const __m256i b_hi =
          _mm256_load_si256(reinterpret_cast<const __m256i*>(b + 32));
      std::uint32_t w;
      std::memcpy(&w, a + static_cast<std::int64_t>(g) * kInt8DotKg, 4);
      const __m256i av = _mm256_set1_epi32(static_cast<int>(w ^ 0x80808080u));
      acc_lo = _mm256_add_epi32(
          acc_lo, _mm256_madd_epi16(
                      _mm256_maddubs_epi16(
                          av, _mm256_and_si256(b_lo, even_mask)),
                      ones16));
      acc_lo = _mm256_add_epi32(
          acc_lo, _mm256_madd_epi16(
                      _mm256_maddubs_epi16(
                          av, _mm256_andnot_si256(even_mask, b_lo)),
                      ones16));
      acc_hi = _mm256_add_epi32(
          acc_hi, _mm256_madd_epi16(
                      _mm256_maddubs_epi16(
                          av, _mm256_and_si256(b_hi, even_mask)),
                      ones16));
      acc_hi = _mm256_add_epi32(
          acc_hi, _mm256_madd_epi16(
                      _mm256_maddubs_epi16(
                          av, _mm256_andnot_si256(even_mask, b_hi)),
                      ones16));
    }
    alignas(32) std::int32_t lanes[kInt8DotNr];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc_lo);
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes + 8), acc_hi);
    std::int32_t* o = out + static_cast<std::int64_t>(r) * ldc + col0;
    for (int j = 0; j < cols; ++j) {
      o[j] = lanes[j] - 128 * row_sums[col0 + j];
    }
  }
}
#endif  // __AVX2__

#if defined(__ARM_NEON) && defined(__ARM_FEATURE_DOTPROD)
// sdot is s8 x s8 and exact as-is: no activation bias, no rowsum
// correction. Four q-register accumulators cover the 16 panel channels.
void DotPanelNeon(const std::int8_t* arows, int lda, const std::int8_t* panel,
                  int k_groups, int col0, int cols, int block_rows,
                  std::int32_t* out, int ldc) {
  for (int r = 0; r < block_rows; ++r) {
    const std::int8_t* a = arows + static_cast<std::int64_t>(r) * lda;
    int32x4_t acc0 = vdupq_n_s32(0);
    int32x4_t acc1 = vdupq_n_s32(0);
    int32x4_t acc2 = vdupq_n_s32(0);
    int32x4_t acc3 = vdupq_n_s32(0);
    for (int g = 0; g < k_groups; ++g) {
      const std::int8_t* b =
          panel + static_cast<std::int64_t>(g) * kInt8DotNr * kInt8DotKg;
      std::uint32_t w;
      std::memcpy(&w, a + static_cast<std::int64_t>(g) * kInt8DotKg, 4);
      const int8x16_t av = vreinterpretq_s8_u32(vdupq_n_u32(w));
      acc0 = vdotq_s32(acc0, av, vld1q_s8(b));
      acc1 = vdotq_s32(acc1, av, vld1q_s8(b + 16));
      acc2 = vdotq_s32(acc2, av, vld1q_s8(b + 32));
      acc3 = vdotq_s32(acc3, av, vld1q_s8(b + 48));
    }
    alignas(16) std::int32_t lanes[kInt8DotNr];
    vst1q_s32(lanes, acc0);
    vst1q_s32(lanes + 4, acc1);
    vst1q_s32(lanes + 8, acc2);
    vst1q_s32(lanes + 12, acc3);
    std::int32_t* o = out + static_cast<std::int64_t>(r) * ldc + col0;
    for (int j = 0; j < cols; ++j) o[j] = lanes[j];
  }
}
#endif  // __ARM_NEON && __ARM_FEATURE_DOTPROD

}  // namespace

PackedInt8DotPanels::PackedInt8DotPanels(const std::int8_t* rows, int n, int k)
    : n_(n), k_(k), k_groups_((k + kInt8DotKg - 1) / kInt8DotKg) {
  num_panels_ = (n + kInt8DotNr - 1) / kInt8DotNr;
  buf_ = AlignedBuffer(static_cast<std::size_t>(num_panels_) * panel_bytes());
  // Zero first: K-padding bytes and the unused channel slots of the last
  // panel must contribute nothing. The biased u8 x s8 kernels multiply
  // padding weights by a nonzero (biased-zero = 128) activation, so a
  // garbage padding byte would corrupt real outputs.
  buf_.Zero();
  auto* d = reinterpret_cast<std::int8_t*>(buf_.data());
  for (int p = 0; p < num_panels_; ++p) {
    std::int8_t* dp = d + static_cast<std::int64_t>(p) * panel_bytes();
    const int col0 = p * kInt8DotNr;
    const int cols = std::min(kInt8DotNr, n - col0);
    for (int j = 0; j < cols; ++j) {
      const std::int8_t* s = rows + static_cast<std::int64_t>(col0 + j) * k;
      for (int kk = 0; kk < k; ++kk) {
        dp[(static_cast<std::int64_t>(kk / kInt8DotKg) * kInt8DotNr + j) *
               kInt8DotKg +
           kk % kInt8DotKg] = s[kk];
      }
    }
  }
  // Padded to a full panel multiple (extra entries zero) so the VNNI
  // correction load can read a whole 16-lane vector per panel unmasked.
  row_sums_.assign(static_cast<std::size_t>(num_panels_) * kInt8DotNr, 0);
  for (int r = 0; r < n; ++r) {
    std::int32_t s = 0;
    for (int kk = 0; kk < k; ++kk) {
      s += rows[static_cast<std::int64_t>(r) * k + kk];
    }
    row_sums_[r] = s;
  }
}

void Int8DotComputeBlock(const std::int8_t* arows, int lda,
                         const PackedInt8DotPanels& rhs, Int8Tier tier,
                         int block_rows, std::int32_t* out, int ldc) {
  const int k_groups = rhs.k_groups();
  const int n = rhs.n();
  (void)tier;  // unread on builds with no SIMD dot kernel compiled in
  for (int p = 0; p < rhs.num_panels(); ++p) {
    const int col0 = p * kInt8DotNr;
    const int cols = std::min(kInt8DotNr, n - col0);
    const std::int8_t* panel = rhs.panel(p);
#if defined(__AVX512VNNI__)
    if (tier == Int8Tier::kVnni) {
      DotPanelVnni(arows, lda, panel, k_groups, rhs.row_sums().data(), col0,
                   cols, block_rows, out, ldc);
      continue;
    }
#endif
#if defined(__AVX2__)
    if (tier == Int8Tier::kAvx2Dot) {
      DotPanelAvx2(arows, lda, panel, k_groups, rhs.row_sums().data(), col0,
                   cols, block_rows, out, ldc);
      continue;
    }
#endif
#if defined(__ARM_NEON) && defined(__ARM_FEATURE_DOTPROD)
    if (tier == Int8Tier::kNeonDot) {
      DotPanelNeon(arows, lda, panel, k_groups, col0, cols, block_rows, out,
                   ldc);
      continue;
    }
#endif
    // kScalar, or a tier whose kernel is not compiled into this binary.
    DotPanelPortable(arows, lda, panel, k_groups, col0, cols, block_rows, out,
                     ldc);
  }
}

}  // namespace lce::gemm
