// Packed float GEMM used by the full-precision layers (first/last layers,
// pointwise shortcut convolutions, ...). This plays the role TFLite's Ruy
// float path plays in the paper's measurements.
//
// Computes out[m][n] = sum_k lhs[m][k] * rhs[n][k]  (RHS stored row-major,
// i.e. "B transposed": convolution weights are packed one output channel per
// row, which is exactly OHWI flattened).
#ifndef LCE_GEMM_FLOAT_GEMM_H_
#define LCE_GEMM_FLOAT_GEMM_H_

#include <cstdint>

#include "core/aligned_buffer.h"
#include "gemm/context.h"

namespace lce::gemm {

inline constexpr int kFloatMr = 4;
inline constexpr int kFloatNr = 16;

// RHS packed once at op-preparation time into [k][NR]-interleaved tiles.
class PackedFloatMatrix {
 public:
  PackedFloatMatrix() = default;
  PackedFloatMatrix(const float* rows, int n, int k);

  int n() const { return n_; }
  int k() const { return k_; }
  int num_tiles() const { return num_tiles_; }
  const float* tile(int t) const {
    return reinterpret_cast<const float*>(buf_.data()) +
           static_cast<std::int64_t>(t) * tile_elems();
  }
  std::int64_t tile_elems() const {
    return static_cast<std::int64_t>(k_) * kFloatNr;
  }

 private:
  int n_ = 0;
  int k_ = 0;
  int num_tiles_ = 0;
  AlignedBuffer buf_;
};

void FloatGemm(const float* lhs, int m, const PackedFloatMatrix& rhs,
               float* out, int ldc, Context& ctx);

// Convenience overload packing the RHS internally.
void FloatGemm(const float* lhs, int m, const float* rhs, int n, int k,
               float* out, int ldc, Context& ctx);

}  // namespace lce::gemm

#endif  // LCE_GEMM_FLOAT_GEMM_H_
