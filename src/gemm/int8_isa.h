// Runtime ISA tier selection for the int8 convolution path.
//
// The int8 TileCompute has two kernel families (gemm/int8_gemm.h): the
// widened 16-bit multiply-add panel kernels that shipped with the fused
// pipeline, and the dot-product kernels (AVX-512 VNNI vpdpbusd, AVX2
// masked vpmaddubsw, NEON sdot) that consume the weight-stationary
// PackedInt8DotPanels layout. Which family actually runs is decided here,
// once per kernel invocation, from three inputs in priority order:
//
//   1. SetInt8TierOverrideForTest()   (tests sweeping every tier)
//   2. the LCE_FORCE_ISA env var      (benches, CI fallback coverage)
//   3. CPUID feature detection        (BestInt8Tier())
//
// A forced tier that is not compiled in or not supported by the running
// CPU is ignored rather than honored, so a stray env var can never select
// an illegal kernel. The selected tier is exported through the
// `conv2d_int8.tier` gauge (kernels/conv2d_int8.cc).
#ifndef LCE_GEMM_INT8_ISA_H_
#define LCE_GEMM_INT8_ISA_H_

namespace lce::gemm {

// True when at least one dot-product kernel is compiled into this binary
// (and PackedInt8DotPanels are therefore worth building at Compile() time).
#if defined(__AVX512VNNI__) || defined(__AVX2__) || \
    (defined(__ARM_NEON) && defined(__ARM_FEATURE_DOTPROD))
#define LCE_INT8_DOT_KERNELS 1
#endif

// Int8 micro-kernel tiers. Values are stable and exported through the
// `conv2d_int8.tier` gauge (asserted by the perf-smoke CI job), so they
// must not be renumbered.
enum class Int8Tier : int {
  kScalar = 1,   // portable widened-dot loop on the kInt8Kc panel layout
  kWidened = 2,  // 16-bit widened madd panel kernels (AVX2 / AVX-512BW)
  kAvx2Dot = 3,  // AVX2 masked vpmaddubsw+vpmaddwd dot-product kernel
  kNeonDot = 4,  // Arm sdot dot-product kernel
  kVnni = 5,     // AVX-512 VNNI vpdpbusd dot-product kernel
};

// Whether `tier` is compiled into this binary AND supported by the running
// CPU (CPUID + XCR0 on x86). kScalar and kWidened are always available:
// kWidened degrades to the scalar kernel on SIMD-less builds.
bool Int8TierAvailable(Int8Tier tier);

// Best available tier, by the cost-model ordering (costmodel/x86_int8.h):
// vnni > neondot > widened-on-AVX512BW > avx2dot > widened > scalar.
// The AVX-512BW widened kernel outranks the 8-wide masked AVX2 dot because
// its 32-MAC madd amortizes the panel-pack overhead better; on plain AVX2
// hardware the dot kernel wins by skipping the pack pass entirely.
Int8Tier BestInt8Tier();

// BestInt8Tier() with the test hook and LCE_FORCE_ISA overrides applied.
// Recognized LCE_FORCE_ISA values: "vnni", "neondot", "avx2dot",
// "widened", "scalar" (unknown values are ignored). The env var is read
// once per process.
Int8Tier SelectInt8Tier();

// Test hook: force a tier programmatically (takes precedence over the env
// var). Pass 0 to clear. Takes effect at the next kernel invocation; not
// meant to race with in-flight runs.
void SetInt8TierOverrideForTest(int tier);

const char* Int8TierName(Int8Tier tier);

// Dot-product tiers consume PackedInt8DotPanels plus raw staged patch
// rows; the other tiers consume the interleaved kInt8Kc panel layout.
bool Int8TierIsDotProduct(Int8Tier tier);

}  // namespace lce::gemm

#endif  // LCE_GEMM_INT8_ISA_H_
