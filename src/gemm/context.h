// Per-request execution context for the GEMM kernels: thread pool handle,
// kernel-profile selection and reusable scratch memory (packing buffers).
//
// The kernel profile mirrors the paper's two benchmark devices: `kSimd`
// corresponds to the hand-tuned NEON path (here: AVX2 / hardware-popcount
// x86 kernels) and `kScalar` to a portable fallback, giving a second "device"
// for the appendix experiments.
//
// Threading model (docs/SERVING.md): the thread pool is *shared* -- many
// contexts may reference one process pool -- but the scratch slots are
// *owned*, one set per context. A Context must therefore never be used by
// two requests at once; concurrent requests each get their own Context
// (an ExecutionContext holds one), which is what makes sharing a prepared
// CompiledModel across threads safe.
#ifndef LCE_GEMM_CONTEXT_H_
#define LCE_GEMM_CONTEXT_H_

#include <cstddef>
#include <memory>
#include <new>
#include <utility>

#include "core/aligned_buffer.h"
#include "core/cancellation.h"
#include "core/macros.h"
#include "core/thread_pool.h"
#include "serving/fault_injection.h"
#include "telemetry/metrics.h"

namespace lce::gemm {

enum class KernelProfile {
  kSimd = 0,    // best available vectorized kernels (AVX2 when compiled in)
  kScalar = 1,  // portable scalar kernels
};

class Context {
 public:
  // Creates a context with its own private pool (single-stream use: tests,
  // micro-benchmarks, the standalone-kernel API).
  explicit Context(int num_threads = 1,
                   KernelProfile profile = KernelProfile::kSimd)
      : pool_(std::make_shared<ThreadPool>(num_threads)), profile_(profile) {}

  // Creates a context on an existing (typically process-shared) pool; the
  // serving path hands every ExecutionContext the same pool this way.
  explicit Context(std::shared_ptr<ThreadPool> pool,
                   KernelProfile profile = KernelProfile::kSimd)
      : pool_(std::move(pool)), profile_(profile) {
    LCE_CHECK(pool_ != nullptr && "Context requires a thread pool");
  }

  ThreadPool& pool() { return *pool_; }
  const std::shared_ptr<ThreadPool>& shared_pool() const { return pool_; }
  int num_threads() const { return pool_->num_threads(); }

  KernelProfile profile() const { return profile_; }
  void set_profile(KernelProfile p) { profile_ = p; }

  // Returns scratch memory of at least `bytes` bytes, reused across calls.
  // Slot 0 and 1 are independent (LHS / RHS packing buffers). Slots are a
  // fixed contract between the kernels (see their header comments); an
  // out-of-range slot is a programmer error, not a resize request.
  //
  // Every request is recorded in the per-slot high-water gauges
  // `gemm.scratch_bytes.slot<N>`, which is what the fused-BConv2D tests use
  // to prove the full-image accumulator is gone from the hot path.
  // Allocation failure (real OOM, or the LCE_FAULT_INJECTION scratch fault
  // point) throws std::bad_alloc; ExecutionContext::Invoke catches it and
  // returns Status::ResourceExhausted, so an overloaded server sheds the
  // request instead of aborting the process (docs/SERVING.md).
  std::uint8_t* Scratch(int slot, std::size_t bytes) {
    LCE_CHECK(slot >= 0 && slot < kNumScratchSlots &&
              "Context::Scratch slot out of range");
    static telemetry::Metric* gauges[kNumScratchSlots] = {
        telemetry::MetricsRegistry::Global().Gauge("gemm.scratch_bytes.slot0"),
        telemetry::MetricsRegistry::Global().Gauge("gemm.scratch_bytes.slot1"),
        telemetry::MetricsRegistry::Global().Gauge("gemm.scratch_bytes.slot2"),
        telemetry::MetricsRegistry::Global().Gauge("gemm.scratch_bytes.slot3")};
    gauges[slot]->SetMax(static_cast<std::int64_t>(bytes));
    auto& buf = scratch_[slot];
    if (!buf || buf->size() < bytes) {
      if (LCE_FAULT_SCRATCH_ALLOC_SHOULD_FAIL(slot)) throw std::bad_alloc();
      buf = std::make_unique<AlignedBuffer>(bytes);
    }
    return buf->data();
  }

  static constexpr int kNumScratchSlots = 4;

  // Cooperative-cancellation token of the request currently executing on
  // this context, or null. Set by ExecutionContext::Invoke for the duration
  // of the call; long-running kernels (the ConvPipeline engine) poll it at
  // block boundaries and exit early once it expires.
  const CancellationToken* cancellation() const { return cancellation_; }
  void set_cancellation(const CancellationToken* token) {
    cancellation_ = token;
  }

 private:
  std::shared_ptr<ThreadPool> pool_;
  KernelProfile profile_;
  std::unique_ptr<AlignedBuffer> scratch_[kNumScratchSlots];
  const CancellationToken* cancellation_ = nullptr;
};

}  // namespace lce::gemm

#endif  // LCE_GEMM_CONTEXT_H_
