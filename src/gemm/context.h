// Execution context shared by all GEMM kernels: thread pool, kernel-profile
// selection and reusable scratch memory (packing buffers).
//
// The kernel profile mirrors the paper's two benchmark devices: `kSimd`
// corresponds to the hand-tuned NEON path (here: AVX2 / hardware-popcount
// x86 kernels) and `kScalar` to a portable fallback, giving a second "device"
// for the appendix experiments.
#ifndef LCE_GEMM_CONTEXT_H_
#define LCE_GEMM_CONTEXT_H_

#include <cstddef>
#include <memory>

#include "core/aligned_buffer.h"
#include "core/thread_pool.h"

namespace lce::gemm {

enum class KernelProfile {
  kSimd = 0,    // best available vectorized kernels (AVX2 when compiled in)
  kScalar = 1,  // portable scalar kernels
};

class Context {
 public:
  explicit Context(int num_threads = 1,
                   KernelProfile profile = KernelProfile::kSimd)
      : pool_(num_threads), profile_(profile) {}

  ThreadPool& pool() { return pool_; }
  int num_threads() const { return pool_.num_threads(); }

  KernelProfile profile() const { return profile_; }
  void set_profile(KernelProfile p) { profile_ = p; }

  // Returns scratch memory of at least `bytes` bytes, reused across calls.
  // Slot 0 and 1 are independent (LHS / RHS packing buffers).
  std::uint8_t* Scratch(int slot, std::size_t bytes) {
    auto& buf = scratch_[slot];
    if (!buf || buf->size() < bytes) {
      buf = std::make_unique<AlignedBuffer>(bytes);
    }
    return buf->data();
  }

  static constexpr int kNumScratchSlots = 4;

 private:
  ThreadPool pool_;
  KernelProfile profile_;
  std::unique_ptr<AlignedBuffer> scratch_[kNumScratchSlots];
};

}  // namespace lce::gemm

#endif  // LCE_GEMM_CONTEXT_H_
