// Indirect BGEMM: binarized convolution without im2col (the second kernel
// family in the upstream LCE codebase).
//
// Instead of materializing [out_pixels][fh*fw*words] patch rows, a setup
// step builds an *indirection buffer* of pointers -- one per (output pixel,
// filter tap) -- into the bitpacked input feature map, with padded taps
// pointing at a shared zero (one-padding) row. The kernel then walks the
// pointers, XOR-popcounting words straight out of the feature map. This
// trades the im2col copy for indirect loads; it wins when the patch buffer
// would not fit in cache and for small output tiles.
#ifndef LCE_GEMM_INDIRECT_BGEMM_H_
#define LCE_GEMM_INDIRECT_BGEMM_H_

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "gemm/context.h"
#include "kernels/conv_params.h"

namespace lce::gemm {

// Precomputed per-convolution indirection state: rebuild only when the
// input pointer or geometry changes.
class IndirectionBuffer {
 public:
  IndirectionBuffer() = default;

  // Builds pointers for every (output position, filter tap) into `input`
  // (bitpacked NHWC). Padded taps point at an internal zero row.
  IndirectionBuffer(const TBitpacked* input, const Conv2DGeometry& geo);

  int rows() const { return rows_; }       // output positions
  int taps() const { return taps_; }       // filter_h * filter_w
  int words() const { return words_; }     // words(in_c)
  const TBitpacked* const* data() const { return pointers_.data(); }

 private:
  int rows_ = 0, taps_ = 0, words_ = 0;
  std::vector<const TBitpacked*> pointers_;  // [rows][taps]
  std::vector<TBitpacked> zero_row_;         // one-padding source
};

// out[r][n] = k_bits - 2 * popcount over the r-th output position's taps
// against weight row n. Weights layout: [n][taps][words] (the BConv2D
// packed_rows_ layout). Single-threaded (the caller shards if needed).
void IndirectBGemm(const IndirectionBuffer& indirection,
                   const TBitpacked* weight_rows, int n, int k_bits,
                   std::int32_t* out, int ldc);

}  // namespace lce::gemm

#endif  // LCE_GEMM_INDIRECT_BGEMM_H_
