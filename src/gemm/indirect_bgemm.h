// Indirect BGEMM: binarized convolution without im2col (the second kernel
// family in the upstream LCE codebase).
//
// Instead of materializing [out_pixels][fh*fw*words] patch rows, a setup
// step builds an *indirection table* -- one entry per (output pixel, filter
// tap) -- into the bitpacked input feature map, with padded taps marked by a
// sentinel. The table is stored as input-relative word offsets, so it
// depends only on the convolution geometry: BConv2D builds it once at
// prepare time (CompiledModel::Compile) and every Invoke rebases offsets to
// pointers on the fly while gathering. This trades the im2col copy for
// indirect loads; it wins whenever the patch buffer round-trip would cost
// more than the gather.
//
// Two consumers:
//   * The gather/pack strategies in kernels/pipeline/gather_pack.h pack
//     micro-kernel A-panels straight from the feature map, feeding the same
//     register-tiled SIMD kernels as the packed BGEMM (gemm/bgemm.h) -- the
//     fused ConvPipeline used by BConv2D, grouped BConv2D, BDepthwiseConv2D
//     and Conv2DInt8.
//   * The legacy IndirectionBuffer + IndirectBGemm pair (pointer table
//     rebuilt per call, scalar 1x4 kernel) is kept as the unfused baseline
//     for the ablation benchmarks.
#ifndef LCE_GEMM_INDIRECT_BGEMM_H_
#define LCE_GEMM_INDIRECT_BGEMM_H_

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "gemm/context.h"
#include "kernels/conv_params.h"

namespace lce::gemm {

// Geometry-only indirection table: for every (output position, filter tap),
// the element offset of the source pixel's channel vector in the NHWC
// input, or kPaddedTap for taps that fall outside the image. Built once per
// convolution (the geometry, including batch, is fixed at prepare time) and
// shared read-only by all invocations and shards.
//
// The element stride is the per-pixel channel-vector length: words(in_c)
// for bitpacked inputs (the default constructor), or any caller-chosen
// stride -- Conv2DInt8 builds byte offsets with elems_per_pixel = in_c.
class IndirectionOffsets {
 public:
  // Sentinel for taps reading spatial padding.
  static constexpr std::int32_t kPaddedTap = -1;

  IndirectionOffsets() = default;
  // Bitpacked default: offsets are word indices (elems = words(in_c)).
  explicit IndirectionOffsets(const Conv2DGeometry& geo);
  // General stride: offsets are elems_per_pixel * pixel_index.
  IndirectionOffsets(const Conv2DGeometry& geo, int elems_per_pixel);

  bool empty() const { return offsets_.empty(); }
  std::int64_t rows() const { return rows_; }  // batch * out_h * out_w
  int taps() const { return taps_; }           // filter_h * filter_w
  // Elements per pixel: words(in_c) for bitpacked inputs, the constructor's
  // elems_per_pixel otherwise (e.g. in_c bytes for int8 inputs).
  int words() const { return words_; }
  // Offsets for output position r: taps() entries.
  const std::int32_t* row(std::int64_t r) const {
    return offsets_.data() + r * taps_;
  }

 private:
  std::int64_t rows_ = 0;
  int taps_ = 0, words_ = 0;
  std::vector<std::int32_t> offsets_;  // [rows][taps]
};

// Legacy per-call pointer table: rebuilt from the geometry and input pointer
// on every construction. Kept as the unfused-indirect ablation baseline.
class IndirectionBuffer {
 public:
  IndirectionBuffer() = default;

  // Builds pointers for every (output position, filter tap) into `input`
  // (bitpacked NHWC). Padded taps point at an internal zero row.
  IndirectionBuffer(const TBitpacked* input, const Conv2DGeometry& geo);

  int rows() const { return rows_; }       // output positions
  int taps() const { return taps_; }       // filter_h * filter_w
  int words() const { return words_; }     // words(in_c)
  const TBitpacked* const* data() const { return pointers_.data(); }

 private:
  int rows_ = 0, taps_ = 0, words_ = 0;
  std::vector<const TBitpacked*> pointers_;  // [rows][taps]
  std::vector<TBitpacked> zero_row_;         // one-padding source
};

// out[r][n] = k_bits - 2 * popcount over the r-th output position's taps
// against weight row n. Weights layout: [n][taps][words] (the BConv2D
// packed_rows_ layout). Single-threaded scalar 1x4 kernel; the fused
// BConv2D pipeline supersedes this for production use.
void IndirectBGemm(const IndirectionBuffer& indirection,
                   const TBitpacked* weight_rows, int n, int k_bits,
                   std::int32_t* out, int ldc);

}  // namespace lce::gemm

#endif  // LCE_GEMM_INDIRECT_BGEMM_H_
