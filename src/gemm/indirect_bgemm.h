// Indirect BGEMM: binarized convolution without im2col (the second kernel
// family in the upstream LCE codebase).
//
// Instead of materializing [out_pixels][fh*fw*words] patch rows, a setup
// step builds an *indirection table* -- one entry per (output pixel, filter
// tap) -- into the bitpacked input feature map, with padded taps marked by a
// sentinel. The table is stored as input-relative word offsets, so it
// depends only on the convolution geometry: BConv2D builds it once at
// prepare time (CompiledModel::Compile) and every Invoke rebases offsets to
// pointers on the fly while gathering. This trades the im2col copy for
// indirect loads; it wins whenever the patch buffer round-trip would cost
// more than the gather.
//
// Two consumers:
//   * GatherPackTile packs a micro-kernel A-panel straight from the feature
//     map, feeding the same register-tiled SIMD kernels as the packed BGEMM
//     (gemm/bgemm.h) -- the fused BConv2D row-tile pipeline.
//   * The legacy IndirectionBuffer + IndirectBGemm pair (pointer table
//     rebuilt per call, scalar 1x4 kernel) is kept as the unfused baseline
//     for the ablation benchmarks.
#ifndef LCE_GEMM_INDIRECT_BGEMM_H_
#define LCE_GEMM_INDIRECT_BGEMM_H_

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "gemm/context.h"
#include "kernels/conv_params.h"

namespace lce::gemm {

// Geometry-only indirection table: for every (output position, filter tap),
// the word offset of the source pixel's channel vector in the bitpacked
// NHWC input, or kPaddedTap for taps that fall outside the image. Built
// once per convolution (the geometry, including batch, is fixed at prepare
// time) and shared read-only by all invocations and shards.
class IndirectionOffsets {
 public:
  // Sentinel for taps reading spatial padding (one-padding: all-zero words).
  static constexpr std::int32_t kPaddedTap = -1;

  IndirectionOffsets() = default;
  explicit IndirectionOffsets(const Conv2DGeometry& geo);

  bool empty() const { return offsets_.empty(); }
  std::int64_t rows() const { return rows_; }  // batch * out_h * out_w
  int taps() const { return taps_; }           // filter_h * filter_w
  int words() const { return words_; }         // words(in_c)
  // Offsets for output position r: taps() entries.
  const std::int32_t* row(std::int64_t r) const {
    return offsets_.data() + r * taps_;
  }

 private:
  std::int64_t rows_ = 0;
  int taps_ = 0, words_ = 0;
  std::vector<std::int32_t> offsets_;  // [rows][taps]
};

// Packs `tile_rows` patch rows starting at output position `row0` into the
// BGEMM A-panel layout ([k_blocks][tile_rows][8] uint64; gemm/bgemm.h),
// gathering words straight from the bitpacked feature map through `ind`.
// Equivalent to bitpacked im2col of those rows followed by
// BGemmPackLhsTile, without materializing the patches. Padded taps read
// from `zero_row` (words(in_c) zero words = +1.0 one-padding); rows beyond
// ind.rows() are left zero (never written back by the caller).
void GatherPackTile(const TBitpacked* input, const IndirectionOffsets& ind,
                    const TBitpacked* zero_row, std::int64_t row0,
                    int tile_rows, int k_blocks, std::uint64_t* dst);

// Legacy per-call pointer table: rebuilt from the geometry and input pointer
// on every construction. Kept as the unfused-indirect ablation baseline.
class IndirectionBuffer {
 public:
  IndirectionBuffer() = default;

  // Builds pointers for every (output position, filter tap) into `input`
  // (bitpacked NHWC). Padded taps point at an internal zero row.
  IndirectionBuffer(const TBitpacked* input, const Conv2DGeometry& geo);

  int rows() const { return rows_; }       // output positions
  int taps() const { return taps_; }       // filter_h * filter_w
  int words() const { return words_; }     // words(in_c)
  const TBitpacked* const* data() const { return pointers_.data(); }

 private:
  int rows_ = 0, taps_ = 0, words_ = 0;
  std::vector<const TBitpacked*> pointers_;  // [rows][taps]
  std::vector<TBitpacked> zero_row_;         // one-padding source
};

// out[r][n] = k_bits - 2 * popcount over the r-th output position's taps
// against weight row n. Weights layout: [n][taps][words] (the BConv2D
// packed_rows_ layout). Single-threaded scalar 1x4 kernel; the fused
// BConv2D pipeline supersedes this for production use.
void IndirectBGemm(const IndirectionBuffer& indirection,
                   const TBitpacked* weight_rows, int n, int k_bits,
                   std::int32_t* out, int ldc);

}  // namespace lce::gemm

#endif  // LCE_GEMM_INDIRECT_BGEMM_H_
