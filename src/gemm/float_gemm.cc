#include "gemm/float_gemm.h"

#include <algorithm>
#include <cstring>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define LCE_FLOAT_GEMM_AVX2 1
#endif

#include "core/macros.h"

namespace lce::gemm {
namespace {

// Packs rows [row0, row0+rows) of an [n][k] row-major matrix into
// [k][rows]-interleaved layout, zero-padding missing rows.
void PackPanel(const float* src, int n, int k, int row0, int rows,
               float* dst) {
  for (int kk = 0; kk < k; ++kk) {
    for (int r = 0; r < rows; ++r) {
      const int row = row0 + r;
      dst[static_cast<std::int64_t>(kk) * rows + r] =
          row < n ? src[static_cast<std::int64_t>(row) * k + kk] : 0.0f;
    }
  }
}

#ifdef LCE_FLOAT_GEMM_AVX2
// 4x16 micro-kernel with FMA: 8 accumulator registers, A broadcast, B loaded
// as two 8-float vectors per k step.
void KernelAvx(const float* apanel, const float* bpanel, int k,
               float acc_out[kFloatMr][kFloatNr]) {
  __m256 acc[kFloatMr][2];
  for (int i = 0; i < kFloatMr; ++i) {
    acc[i][0] = _mm256_setzero_ps();
    acc[i][1] = _mm256_setzero_ps();
  }
  for (int kk = 0; kk < k; ++kk) {
    const __m256 b0 = _mm256_load_ps(bpanel + kk * kFloatNr);
    const __m256 b1 = _mm256_load_ps(bpanel + kk * kFloatNr + 8);
    const float* a = apanel + kk * kFloatMr;
    for (int i = 0; i < kFloatMr; ++i) {
      const __m256 ai = _mm256_set1_ps(a[i]);
      acc[i][0] = _mm256_fmadd_ps(ai, b0, acc[i][0]);
      acc[i][1] = _mm256_fmadd_ps(ai, b1, acc[i][1]);
    }
  }
  for (int i = 0; i < kFloatMr; ++i) {
    _mm256_storeu_ps(&acc_out[i][0], acc[i][0]);
    _mm256_storeu_ps(&acc_out[i][8], acc[i][1]);
  }
}
#endif

// Portable kernel; written so the compiler can vectorize the inner j loop.
void KernelScalar(const float* apanel, const float* bpanel, int k,
                  float acc_out[kFloatMr][kFloatNr]) {
  float acc[kFloatMr][kFloatNr] = {};
  for (int kk = 0; kk < k; ++kk) {
    const float* a = apanel + kk * kFloatMr;
    const float* b = bpanel + kk * kFloatNr;
    for (int i = 0; i < kFloatMr; ++i) {
      for (int j = 0; j < kFloatNr; ++j) acc[i][j] += a[i] * b[j];
    }
  }
  std::memcpy(acc_out, acc, sizeof(acc));
}

}  // namespace

PackedFloatMatrix::PackedFloatMatrix(const float* rows, int n, int k)
    : n_(n), k_(k) {
  num_tiles_ = (n + kFloatNr - 1) / kFloatNr;
  buf_ = AlignedBuffer(static_cast<std::size_t>(num_tiles_) * tile_elems() *
                       sizeof(float));
  auto* d = reinterpret_cast<float*>(buf_.data());
  for (int t = 0; t < num_tiles_; ++t) {
    PackPanel(rows, n, k, t * kFloatNr, kFloatNr,
              d + static_cast<std::int64_t>(t) * tile_elems());
  }
}

void FloatGemm(const float* lhs, int m, const PackedFloatMatrix& rhs,
               float* out, int ldc, Context& ctx) {
  const int k = rhs.k();
  const int n = rhs.n();
  const int m_tiles = (m + kFloatMr - 1) / kFloatMr;
  const std::int64_t a_tile_elems = static_cast<std::int64_t>(k) * kFloatMr;

  auto* apanels = reinterpret_cast<float*>(ctx.Scratch(
      0, static_cast<std::size_t>(m_tiles) * a_tile_elems * sizeof(float)));
  ctx.pool().ParallelFor(m_tiles, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t t = begin; t < end; ++t) {
      PackPanel(lhs, m, k, static_cast<int>(t) * kFloatMr, kFloatMr,
                apanels + t * a_tile_elems);
    }
  });

  const KernelProfile profile = ctx.profile();
  // Loop order: B tiles outermost within each shard so a packed B panel
  // (kFloatNr x K, L2-resident) is reused across every LHS tile of the
  // shard instead of being re-streamed per row tile -- for a 3136x64x576
  // GEMM this cuts B traffic by the number of m-tiles.
  ctx.pool().ParallelFor(m_tiles, [&](std::int64_t begin, std::int64_t end) {
    float acc[kFloatMr][kFloatNr];
    for (int nt = 0; nt < rhs.num_tiles(); ++nt) {
      const int col0 = nt * kFloatNr;
      const int cols = std::min(kFloatNr, n - col0);
      for (std::int64_t mt = begin; mt < end; ++mt) {
        const int row0 = static_cast<int>(mt) * kFloatMr;
        const int rows = std::min(kFloatMr, m - row0);
#ifdef LCE_FLOAT_GEMM_AVX2
        if (profile == KernelProfile::kSimd) {
          KernelAvx(apanels + mt * a_tile_elems, rhs.tile(nt), k, acc);
        } else {
          KernelScalar(apanels + mt * a_tile_elems, rhs.tile(nt), k, acc);
        }
#else
        (void)profile;
        KernelScalar(apanels + mt * a_tile_elems, rhs.tile(nt), k, acc);
#endif
        for (int i = 0; i < rows; ++i) {
          float* o = out + static_cast<std::int64_t>(row0 + i) * ldc + col0;
          for (int j = 0; j < cols; ++j) o[j] = acc[i][j];
        }
      }
    }
  });
}

void FloatGemm(const float* lhs, int m, const float* rhs, int n, int k,
               float* out, int ldc, Context& ctx) {
  PackedFloatMatrix packed(rhs, n, k);
  FloatGemm(lhs, m, packed, out, ldc, ctx);
}

}  // namespace lce::gemm
