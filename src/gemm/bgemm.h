// BGEMM: binary matrix multiplication via XOR + POPCOUNT (paper section 3.2).
//
// Computes, for bitpacked LHS rows l_i and RHS rows r_j of `k_bits` logical
// +/-1 values each:
//
//   out[i][j] = dot(l_i, r_j) = k_bits - 2 * popcount(l_i XOR r_j)
//
// Channel-padding bits are 0 in both operands so they contribute nothing to
// the popcount, and using the logical k_bits cancels their +1 products
// exactly; no separate correction is needed.
//
// The implementation follows the Ruy-style structure described in the paper:
// both operands are packed into register-tile-friendly panels, the inner
// micro-kernel keeps a 4x4 tile of int32 accumulators, and work is sharded
// across threads over LHS row tiles. On x86 the `kSimd` profile uses an AVX2
// nibble-LUT popcount kernel (standing in for the paper's hand-tuned NEON
// eor/cnt/addp sequence); `kScalar` uses portable 64-bit hardware popcounts.
#ifndef LCE_GEMM_BGEMM_H_
#define LCE_GEMM_BGEMM_H_

#include <cstdint>

#include "core/aligned_buffer.h"
#include "core/types.h"
#include "gemm/context.h"

namespace lce::gemm {

// Micro-tile sizes of the BGEMM kernel. K is processed in 256-bit blocks.
inline constexpr int kBgemmMr = 4;
inline constexpr int kBgemmNr = 4;
inline constexpr int kBgemmKWords64 = 4;  // 4 x uint64 = 256 bits per k-block

// A weights-side matrix packed once at op-preparation time (the paper's
// "weight packing to optimize memory access patterns").
class PackedBinaryMatrix {
 public:
  PackedBinaryMatrix() = default;

  // rows: [n][kw] bitpacked row-major, n rows of kw TBitpacked words.
  PackedBinaryMatrix(const TBitpacked* rows, int n, int kw);

  int n() const { return n_; }
  int kw() const { return kw_; }
  int k_blocks() const { return k_blocks_; }
  int num_tiles() const { return num_tiles_; }
  // Packed data for tile t: [k_blocks][NR][4] uint64.
  const std::uint64_t* tile(int t) const {
    return data() + static_cast<std::int64_t>(t) * tile_elems();
  }
  std::int64_t tile_elems() const {
    return static_cast<std::int64_t>(k_blocks_) * kBgemmNr * kBgemmKWords64;
  }

 private:
  const std::uint64_t* data() const {
    return reinterpret_cast<const std::uint64_t*>(buf_.data());
  }
  int n_ = 0;
  int kw_ = 0;
  int k_blocks_ = 0;
  int num_tiles_ = 0;
  AlignedBuffer buf_;
};

// out[i][j] = k_bits - 2*popcount(lhs_i ^ rhs_j); out is row-major MxN with
// leading dimension ldc. LHS is packed into context scratch per call.
void BGemm(const TBitpacked* lhs, int m, const PackedBinaryMatrix& rhs,
           int k_bits, std::int32_t* out, int ldc, Context& ctx);

// Convenience overload packing the RHS internally (tests, one-shot use).
void BGemm(const TBitpacked* lhs, int m, const TBitpacked* rhs, int n, int kw,
           int k_bits, std::int32_t* out, int ldc, Context& ctx);

// True when the binary was compiled with the AVX2 kernel available.
bool HasSimdBGemm();

}  // namespace lce::gemm

#endif  // LCE_GEMM_BGEMM_H_
