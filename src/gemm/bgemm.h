// BGEMM: binary matrix multiplication via XOR + POPCOUNT (paper section 3.2).
//
// Computes, for bitpacked LHS rows l_i and RHS rows r_j of `k_bits` logical
// +/-1 values each:
//
//   out[i][j] = dot(l_i, r_j) = k_bits - 2 * popcount(l_i XOR r_j)
//
// Channel-padding bits are 0 in both operands so they contribute nothing to
// the popcount, and using the logical k_bits cancels their +1 products
// exactly; no separate correction is needed.
//
// The implementation follows the Ruy-style structure described in the paper:
// both operands are packed into register-tile-friendly panels, the inner
// micro-kernel keeps a 4x4 tile of int32 accumulators, and work is sharded
// across threads over LHS row tiles. On x86 the `kSimd` profile uses an AVX2
// nibble-LUT popcount kernel (standing in for the paper's hand-tuned NEON
// eor/cnt/addp sequence); `kScalar` uses portable 64-bit hardware popcounts.
#ifndef LCE_GEMM_BGEMM_H_
#define LCE_GEMM_BGEMM_H_

#include <cstdint>

#include "core/aligned_buffer.h"
#include "core/types.h"
#include "gemm/context.h"

namespace lce::gemm {

// Micro-tile sizes of the BGEMM kernel. K is processed in 512-bit blocks:
// one full zmm register on AVX-512, two ymm halves on AVX2, four NEON
// q-registers on ARM.
inline constexpr int kBgemmMr = 4;
inline constexpr int kBgemmNr = 4;
inline constexpr int kBgemmKWords64 = 8;  // 8 x uint64 = 512 bits per k-block

// A weights-side matrix packed once at op-preparation time (the paper's
// "weight packing to optimize memory access patterns").
class PackedBinaryMatrix {
 public:
  PackedBinaryMatrix() = default;

  // rows: [n][kw] bitpacked row-major, n rows of kw TBitpacked words.
  PackedBinaryMatrix(const TBitpacked* rows, int n, int kw);

  int n() const { return n_; }
  int kw() const { return kw_; }
  int k_blocks() const { return k_blocks_; }
  int num_tiles() const { return num_tiles_; }
  // Packed data for tile t: [k_blocks][NR][8] uint64.
  const std::uint64_t* tile(int t) const {
    return data() + static_cast<std::int64_t>(t) * tile_elems();
  }
  std::int64_t tile_elems() const {
    return static_cast<std::int64_t>(k_blocks_) * kBgemmNr * kBgemmKWords64;
  }

 private:
  const std::uint64_t* data() const {
    return reinterpret_cast<const std::uint64_t*>(buf_.data());
  }
  int n_ = 0;
  int kw_ = 0;
  int k_blocks_ = 0;
  int num_tiles_ = 0;
  AlignedBuffer buf_;
};

// Number of 512-bit k-blocks covering `kw` bitpacked 32-bit words.
inline int BGemmKBlocks(int kw) {
  const int words_per_block = kBgemmKWords64 * 2;  // 16 x uint32
  return (kw + words_per_block - 1) / words_per_block;
}

// Elements (uint64) of an A-panel holding `tile_rows` rows over `k_blocks`.
inline std::int64_t BGemmApanelElems(int k_blocks, int tile_rows) {
  return static_cast<std::int64_t>(k_blocks) * tile_rows * kBgemmKWords64;
}

// Packs one contiguous bitpacked row of `kw` words into panel row `r` of a
// [k_blocks][tile_rows][8]-uint64 panel. Destination-major: every u64 of the
// row is written exactly once (including zeroed k-padding), so the panel
// needs no prior clearing. This is the hot inner step of both LHS packing
// and the fused gather-pack.
inline void BGemmPackLhsRow(const TBitpacked* s, int kw, int k_blocks, int r,
                            int tile_rows, std::uint64_t* dst) {
  std::uint64_t* d = dst + static_cast<std::int64_t>(r) * kBgemmKWords64;
  const std::int64_t kb_stride =
      static_cast<std::int64_t>(tile_rows) * kBgemmKWords64;
  constexpr int kBlockWords = kBgemmKWords64 * 2;  // 32-bit words per block
  const int full = kw / kBlockWords;  // k-blocks fully covered by the row
  int w = 0;
  for (int kb = 0; kb < full; ++kb, d += kb_stride, w += kBlockWords) {
    for (int i = 0; i < kBgemmKWords64; ++i) {
      d[i] = static_cast<std::uint64_t>(s[w + 2 * i]) |
             static_cast<std::uint64_t>(s[w + 2 * i + 1]) << 32;
    }
  }
  for (int kb = full; kb < k_blocks; ++kb, d += kb_stride) {
    std::uint64_t tmp[kBgemmKWords64] = {};
    for (int i = 0; w < kw && i < kBlockWords; ++i, ++w) {
      tmp[i / 2] |= static_cast<std::uint64_t>(s[w]) << ((i % 2) * 32);
    }
    for (int i = 0; i < kBgemmKWords64; ++i) d[i] = tmp[i];
  }
}

// Zero-fills panel row `r` (for tile rows past the end of the matrix).
inline void BGemmZeroLhsRow(int k_blocks, int r, int tile_rows,
                            std::uint64_t* dst) {
  std::uint64_t* d = dst + static_cast<std::int64_t>(r) * kBgemmKWords64;
  const std::int64_t kb_stride =
      static_cast<std::int64_t>(tile_rows) * kBgemmKWords64;
  for (int kb = 0; kb < k_blocks; ++kb, d += kb_stride) {
    for (int i = 0; i < kBgemmKWords64; ++i) d[i] = 0;
  }
}

// Packs `tile_rows` rows (starting at `row0`, zero-padded beyond `n`) of a
// [n][kw] bitpacked matrix into the [k_blocks][tile_rows][8]-uint64 panel
// layout consumed by the micro-kernels. Zero padding encodes +1 values, but
// padded k-words are 0 in both operands so they never affect the popcount.
void BGemmPackLhsTile(const TBitpacked* src, int n, int kw, int row0,
                      int tile_rows, int k_blocks, std::uint64_t* dst);

// One micro-kernel invocation: a kBgemmMr x kBgemmNr tile of XOR-popcount
// accumulators over `k_blocks` panel steps, dispatched to the best kernel
// for `profile` (AVX-512 / AVX2 / NEON / scalar). Shared by the packed
// BGEMM below and the fused indirect path (gemm/indirect_bgemm.h).
void BGemmComputeTile(const std::uint64_t* apanel, const std::uint64_t* bpanel,
                      int k_blocks, KernelProfile profile,
                      std::int32_t acc[kBgemmMr][kBgemmNr]);

// Computes `block_rows` x rhs.n() outputs from `block_tiles` consecutive
// packed A-panels (each `a_elems` uint64 long, starting at `apanels`)
// against every weight tile of `rhs`, writing k_bits - 2 * popcount into
// `out` (row-major, leading dimension `ldc` >= rhs.n(); grouped
// convolutions write each group's columns into a wider accumulator). Loop
// order is nt-outer / tile-inner so each packed weight tile stays
// cache-resident across the whole block -- the compute core of both the
// unfused BGemm and the fused ConvPipeline. Defined in bgemm.cc so the
// micro-kernels inline into the loop.
void BGemmComputeBlock(const std::uint64_t* apanels, std::int64_t a_elems,
                       const PackedBinaryMatrix& rhs, int k_bits,
                       KernelProfile profile, int block_tiles, int block_rows,
                       std::int32_t* out, int ldc);

// out[i][j] = k_bits - 2*popcount(lhs_i ^ rhs_j); out is row-major MxN with
// leading dimension ldc. LHS is packed into context scratch per call.
void BGemm(const TBitpacked* lhs, int m, const PackedBinaryMatrix& rhs,
           int k_bits, std::int32_t* out, int ldc, Context& ctx);

// Convenience overload packing the RHS internally (tests, one-shot use).
void BGemm(const TBitpacked* lhs, int m, const TBitpacked* rhs, int n, int kw,
           int k_bits, std::int32_t* out, int ldc, Context& ctx);

// True when the binary was compiled with the AVX2 kernel available.
bool HasSimdBGemm();

}  // namespace lce::gemm

#endif  // LCE_GEMM_BGEMM_H_
