#include "gemm/bgemm.h"

#include <bit>
#include <cstring>

#ifdef __AVX2__
#include <immintrin.h>
#endif
#if defined(__ARM_NEON) || defined(__ARM_NEON__)
#include <arm_neon.h>
#endif

#include "core/macros.h"
#include "telemetry/metrics.h"
#include "telemetry/tracer.h"

namespace lce::gemm {
namespace {

// Number of 256-bit k-blocks for kw 32-bit words.
int KBlocks(int kw) {
  const int words_per_block = kBgemmKWords64 * 2;  // 8 x uint32
  return (kw + words_per_block - 1) / words_per_block;
}

// Packs `tile_rows` rows (starting at `row0`, zero-padding beyond `n`) of a
// [n][kw] bitpacked matrix into the panel layout [k_blocks][tile_rows][4]
// uint64. Zero padding encodes +1 values, but padded k-words are 0 in both
// operands so they never affect the popcount, and padded rows are never
// written back.
void PackTile(const TBitpacked* src, int n, int kw, int row0, int tile_rows,
              int k_blocks, std::uint64_t* dst) {
  std::memset(dst, 0,
              static_cast<std::size_t>(k_blocks) * tile_rows * kBgemmKWords64 *
                  sizeof(std::uint64_t));
  for (int r = 0; r < tile_rows; ++r) {
    const int row = row0 + r;
    if (row >= n) continue;
    const TBitpacked* s = src + static_cast<std::int64_t>(row) * kw;
    for (int w = 0; w < kw; ++w) {
      const int kb = w / 8;
      const int w64 = (w % 8) / 2;
      const int half = w % 2;
      std::uint64_t& d =
          dst[(static_cast<std::int64_t>(kb) * tile_rows + r) * kBgemmKWords64 +
              w64];
      d |= static_cast<std::uint64_t>(s[w]) << (half * 32);
    }
  }
}

// Scalar micro-kernel: 4x4 tile of accumulators over [k_blocks] panel steps.
// Each k-block contributes 4x4x4 = 64 popcounts of 64 bits = 4096 MACs.
void KernelScalar4x4(const std::uint64_t* apanel, const std::uint64_t* bpanel,
                     int k_blocks, std::int32_t acc[kBgemmMr][kBgemmNr]) {
  std::memset(acc, 0, sizeof(std::int32_t) * kBgemmMr * kBgemmNr);
  for (int kb = 0; kb < k_blocks; ++kb) {
    const std::uint64_t* a = apanel + kb * kBgemmMr * kBgemmKWords64;
    const std::uint64_t* b = bpanel + kb * kBgemmNr * kBgemmKWords64;
    for (int i = 0; i < kBgemmMr; ++i) {
      const std::uint64_t a0 = a[i * 4 + 0], a1 = a[i * 4 + 1];
      const std::uint64_t a2 = a[i * 4 + 2], a3 = a[i * 4 + 3];
      for (int j = 0; j < kBgemmNr; ++j) {
        const std::uint64_t* bj = b + j * 4;
        acc[i][j] += std::popcount(a0 ^ bj[0]) + std::popcount(a1 ^ bj[1]) +
                     std::popcount(a2 ^ bj[2]) + std::popcount(a3 ^ bj[3]);
      }
    }
  }
}

#if defined(__ARM_NEON) || defined(__ARM_NEON__)
#define LCE_BGEMM_NEON 1
// NEON micro-kernel implementing exactly the paper's Table 1 sequence:
// eor (multiply), cnt (per-byte popcount), and pairwise-add-accumulate
// (vpadal) to widen the counts. Processes the 4x4 tile two 128-bit halves
// per 256-bit k-block. Byte counters are widened every block, so no
// overflow management is needed. (Compile-guarded: exercised on ARM builds;
// x86 hosts use the AVX-512/AVX2 kernels below.)
void KernelNeon4x4(const std::uint64_t* apanel, const std::uint64_t* bpanel,
                   int k_blocks, std::int32_t acc_out[kBgemmMr][kBgemmNr]) {
  uint32x4_t acc[kBgemmMr][kBgemmNr];
  for (int i = 0; i < kBgemmMr; ++i)
    for (int j = 0; j < kBgemmNr; ++j) acc[i][j] = vdupq_n_u32(0);

  for (int kb = 0; kb < k_blocks; ++kb) {
    const std::uint64_t* a =
        apanel + static_cast<std::int64_t>(kb) * kBgemmMr * kBgemmKWords64;
    const std::uint64_t* b =
        bpanel + static_cast<std::int64_t>(kb) * kBgemmNr * kBgemmKWords64;
    for (int i = 0; i < kBgemmMr; ++i) {
      const uint8x16_t a0 =
          vreinterpretq_u8_u64(vld1q_u64(a + i * kBgemmKWords64));
      const uint8x16_t a1 =
          vreinterpretq_u8_u64(vld1q_u64(a + i * kBgemmKWords64 + 2));
      for (int j = 0; j < kBgemmNr; ++j) {
        const uint8x16_t b0 =
            vreinterpretq_u8_u64(vld1q_u64(b + j * kBgemmKWords64));
        const uint8x16_t b1 =
            vreinterpretq_u8_u64(vld1q_u64(b + j * kBgemmKWords64 + 2));
        // eor + cnt on both halves; byte counts <= 8 per lane.
        const uint8x16_t c0 = vcntq_u8(veorq_u8(a0, b0));
        const uint8x16_t c1 = vcntq_u8(veorq_u8(a1, b1));
        // 8-bit -> 16-bit pairwise add, then accumulate into 32-bit lanes.
        const uint16x8_t s = vaddq_u16(vpaddlq_u8(c0), vpaddlq_u8(c1));
        acc[i][j] = vpadalq_u16(acc[i][j], s);
      }
    }
  }
  for (int i = 0; i < kBgemmMr; ++i) {
    for (int j = 0; j < kBgemmNr; ++j) {
      acc_out[i][j] = static_cast<std::int32_t>(
          vgetq_lane_u32(acc[i][j], 0) + vgetq_lane_u32(acc[i][j], 1) +
          vgetq_lane_u32(acc[i][j], 2) + vgetq_lane_u32(acc[i][j], 3));
    }
  }
}
#endif  // __ARM_NEON

#if defined(__AVX512VPOPCNTDQ__) && defined(__AVX512VL__)
#define LCE_BGEMM_AVX512 1
// AVX-512 micro-kernel: full 4x4 register tile using the hardware vector
// popcount (vpopcntq), the closest x86 analogue of the paper's NEON cnt
// path -- one xor + one popcount + one add per 256 binary MACs.
void KernelAvx512_4x4(const std::uint64_t* apanel, const std::uint64_t* bpanel,
                      int k_blocks, std::int32_t acc_out[kBgemmMr][kBgemmNr]) {
  __m256i acc[kBgemmMr][kBgemmNr];
  for (int i = 0; i < kBgemmMr; ++i)
    for (int j = 0; j < kBgemmNr; ++j) acc[i][j] = _mm256_setzero_si256();

  for (int kb = 0; kb < k_blocks; ++kb) {
    const std::uint64_t* a =
        apanel + static_cast<std::int64_t>(kb) * kBgemmMr * kBgemmKWords64;
    const std::uint64_t* b =
        bpanel + static_cast<std::int64_t>(kb) * kBgemmNr * kBgemmKWords64;
    __m256i bv[kBgemmNr];
    for (int j = 0; j < kBgemmNr; ++j) {
      bv[j] = _mm256_load_si256(reinterpret_cast<const __m256i*>(b + j * 4));
    }
    for (int i = 0; i < kBgemmMr; ++i) {
      const __m256i av =
          _mm256_load_si256(reinterpret_cast<const __m256i*>(a + i * 4));
      for (int j = 0; j < kBgemmNr; ++j) {
        acc[i][j] = _mm256_add_epi64(
            acc[i][j], _mm256_popcnt_epi64(_mm256_xor_si256(av, bv[j])));
      }
    }
  }
  for (int i = 0; i < kBgemmMr; ++i) {
    for (int j = 0; j < kBgemmNr; ++j) {
      alignas(32) std::uint64_t lanes[4];
      _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc[i][j]);
      acc_out[i][j] =
          static_cast<std::int32_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
    }
  }
}
#endif  // AVX512VPOPCNTDQ && AVX512VL

#ifdef __AVX2__
// AVX2 micro-kernel processing two LHS rows against four RHS rows. Popcount
// of each 256-bit XOR result is computed with the classic nibble-LUT pshufb
// sequence and accumulated via sad_epu8 into 64-bit lanes. This mirrors the
// role of the paper's NEON eor/cnt/addp/uadalp sequence.
void KernelAvx2_2x4(const std::uint64_t* apanel, const std::uint64_t* bpanel,
                    int row_pair, int k_blocks,
                    std::int32_t acc_out[2][kBgemmNr]) {
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
                                       3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2,
                                       2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc[2][kBgemmNr];
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < kBgemmNr; ++j) acc[i][j] = zero;

  for (int kb = 0; kb < k_blocks; ++kb) {
    const std::uint64_t* a =
        apanel + (static_cast<std::int64_t>(kb) * kBgemmMr + 2 * row_pair) *
                     kBgemmKWords64;
    const std::uint64_t* b =
        bpanel + static_cast<std::int64_t>(kb) * kBgemmNr * kBgemmKWords64;
    const __m256i a0 = _mm256_load_si256(reinterpret_cast<const __m256i*>(a));
    const __m256i a1 =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(a + 4));
    for (int j = 0; j < kBgemmNr; ++j) {
      const __m256i bj =
          _mm256_load_si256(reinterpret_cast<const __m256i*>(b + j * 4));
      const __m256i x0 = _mm256_xor_si256(a0, bj);
      const __m256i x1 = _mm256_xor_si256(a1, bj);
      // popcount bytes of x0, x1.
      const __m256i c0 = _mm256_add_epi8(
          _mm256_shuffle_epi8(lut, _mm256_and_si256(x0, low_mask)),
          _mm256_shuffle_epi8(
              lut, _mm256_and_si256(_mm256_srli_epi32(x0, 4), low_mask)));
      const __m256i c1 = _mm256_add_epi8(
          _mm256_shuffle_epi8(lut, _mm256_and_si256(x1, low_mask)),
          _mm256_shuffle_epi8(
              lut, _mm256_and_si256(_mm256_srli_epi32(x1, 4), low_mask)));
      acc[0][j] = _mm256_add_epi64(acc[0][j], _mm256_sad_epu8(c0, zero));
      acc[1][j] = _mm256_add_epi64(acc[1][j], _mm256_sad_epu8(c1, zero));
    }
  }
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < kBgemmNr; ++j) {
      alignas(32) std::uint64_t lanes[4];
      _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc[i][j]);
      acc_out[i][j] =
          static_cast<std::int32_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
    }
  }
}
#endif  // __AVX2__

void ComputeTile(const std::uint64_t* apanel, const std::uint64_t* bpanel,
                 int k_blocks, KernelProfile profile,
                 std::int32_t acc[kBgemmMr][kBgemmNr]) {
#ifdef LCE_BGEMM_AVX512
  if (profile == KernelProfile::kSimd) {
    KernelAvx512_4x4(apanel, bpanel, k_blocks, acc);
    return;
  }
#endif
#ifdef LCE_BGEMM_NEON
  if (profile == KernelProfile::kSimd) {
    KernelNeon4x4(apanel, bpanel, k_blocks, acc);
    return;
  }
#endif
#ifdef __AVX2__
  if (profile == KernelProfile::kSimd) {
    std::int32_t acc2[2][kBgemmNr];
    KernelAvx2_2x4(apanel, bpanel, 0, k_blocks, acc2);
    std::memcpy(acc[0], acc2, sizeof(acc2));
    KernelAvx2_2x4(apanel, bpanel, 1, k_blocks, acc2);
    std::memcpy(acc[2], acc2, sizeof(acc2));
    return;
  }
#else
  (void)profile;
#endif
  KernelScalar4x4(apanel, bpanel, k_blocks, acc);
}

}  // namespace

PackedBinaryMatrix::PackedBinaryMatrix(const TBitpacked* rows, int n, int kw)
    : n_(n), kw_(kw), k_blocks_(KBlocks(kw)) {
  LCE_TRACE_SCOPE_CAT("bgemm/pack_weights", "gemm");
  num_tiles_ = (n + kBgemmNr - 1) / kBgemmNr;
  buf_ = AlignedBuffer(static_cast<std::size_t>(num_tiles_) * tile_elems() *
                       sizeof(std::uint64_t));
  auto* d = reinterpret_cast<std::uint64_t*>(buf_.data());
  for (int t = 0; t < num_tiles_; ++t) {
    PackTile(rows, n, kw, t * kBgemmNr, kBgemmNr, k_blocks_,
             d + static_cast<std::int64_t>(t) * tile_elems());
  }
}

void BGemm(const TBitpacked* lhs, int m, const PackedBinaryMatrix& rhs,
           int k_bits, std::int32_t* out, int ldc, Context& ctx) {
  const int kw = rhs.kw();
  const int k_blocks = rhs.k_blocks();
  const int m_tiles = (m + kBgemmMr - 1) / kBgemmMr;
  const std::int64_t a_tile_elems =
      static_cast<std::int64_t>(k_blocks) * kBgemmMr * kBgemmKWords64;

  // One BGEMM computes m x n dot products of k_bits binary positions each.
  static telemetry::Metric* macs =
      telemetry::MetricsRegistry::Global().Counter("bgemm.binary_macs");
  macs->Add(static_cast<std::int64_t>(m) * rhs.n() * k_bits);

  // Pack all LHS tiles into scratch (slot 0).
  auto* apanels = reinterpret_cast<std::uint64_t*>(ctx.Scratch(
      0, static_cast<std::size_t>(m_tiles) * a_tile_elems * sizeof(std::uint64_t)));
  {
    LCE_TRACE_SCOPE_CAT("bgemm/pack", "gemm");
    ctx.pool().ParallelFor(m_tiles, [&](std::int64_t begin, std::int64_t end) {
      for (std::int64_t t = begin; t < end; ++t) {
        PackTile(lhs, m, kw, static_cast<int>(t) * kBgemmMr, kBgemmMr, k_blocks,
                 apanels + t * a_tile_elems);
      }
    });
  }

  const KernelProfile profile = ctx.profile();
  const int n = rhs.n();
  LCE_TRACE_SCOPE_CAT("bgemm/compute", "gemm");
  // B-tile-outer loop order: each packed weight tile stays cache-resident
  // across all activation tiles of the shard (see float_gemm.cc).
  ctx.pool().ParallelFor(m_tiles, [&](std::int64_t begin, std::int64_t end) {
    std::int32_t acc[kBgemmMr][kBgemmNr];
    for (int nt = 0; nt < rhs.num_tiles(); ++nt) {
      const int col0 = nt * kBgemmNr;
      const int cols = std::min(kBgemmNr, n - col0);
      for (std::int64_t mt = begin; mt < end; ++mt) {
        const int row0 = static_cast<int>(mt) * kBgemmMr;
        const int rows = std::min(kBgemmMr, m - row0);
        ComputeTile(apanels + mt * a_tile_elems, rhs.tile(nt), k_blocks,
                    profile, acc);
        for (int i = 0; i < rows; ++i) {
          std::int32_t* o = out + static_cast<std::int64_t>(row0 + i) * ldc + col0;
          for (int j = 0; j < cols; ++j) o[j] = k_bits - 2 * acc[i][j];
        }
      }
    }
  });
}

void BGemm(const TBitpacked* lhs, int m, const TBitpacked* rhs, int n, int kw,
           int k_bits, std::int32_t* out, int ldc, Context& ctx) {
  PackedBinaryMatrix packed(rhs, n, kw);
  BGemm(lhs, m, packed, k_bits, out, ldc, ctx);
}

bool HasSimdBGemm() {
#ifdef __AVX2__
  return true;
#else
  return false;
#endif
}

}  // namespace lce::gemm
