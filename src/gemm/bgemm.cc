#include "gemm/bgemm.h"

#include <bit>
#include <cstring>

#ifdef __AVX2__
#include <immintrin.h>
#endif
#if defined(__ARM_NEON) || defined(__ARM_NEON__)
#include <arm_neon.h>
#endif

#include "core/macros.h"
#include "telemetry/metrics.h"
#include "telemetry/tracer.h"

namespace lce::gemm {

void BGemmPackLhsTile(const TBitpacked* src, int n, int kw, int row0,
                      int tile_rows, int k_blocks, std::uint64_t* dst) {
  for (int r = 0; r < tile_rows; ++r) {
    const int row = row0 + r;
    if (row >= n) {
      BGemmZeroLhsRow(k_blocks, r, tile_rows, dst);
      continue;
    }
    BGemmPackLhsRow(src + static_cast<std::int64_t>(row) * kw, kw, k_blocks, r,
                    tile_rows, dst);
  }
}

namespace {

// Scalar micro-kernel: 4x4 tile of accumulators over [k_blocks] panel steps.
// Each k-block contributes 4x4x8 = 128 popcounts of 64 bits = 8192 MACs.
void KernelScalar4x4(const std::uint64_t* apanel, const std::uint64_t* bpanel,
                     int k_blocks, std::int32_t acc[kBgemmMr][kBgemmNr]) {
  std::memset(acc, 0, sizeof(std::int32_t) * kBgemmMr * kBgemmNr);
  for (int kb = 0; kb < k_blocks; ++kb) {
    const std::uint64_t* a = apanel + kb * kBgemmMr * kBgemmKWords64;
    const std::uint64_t* b = bpanel + kb * kBgemmNr * kBgemmKWords64;
    for (int i = 0; i < kBgemmMr; ++i) {
      const std::uint64_t* ai = a + i * kBgemmKWords64;
      for (int j = 0; j < kBgemmNr; ++j) {
        const std::uint64_t* bj = b + j * kBgemmKWords64;
        std::int32_t s = 0;
        for (int w = 0; w < kBgemmKWords64; ++w) {
          s += std::popcount(ai[w] ^ bj[w]);
        }
        acc[i][j] += s;
      }
    }
  }
}

#if defined(__ARM_NEON) || defined(__ARM_NEON__)
#define LCE_BGEMM_NEON 1
// NEON micro-kernel implementing exactly the paper's Table 1 sequence:
// eor (multiply), cnt (per-byte popcount), and pairwise-add-accumulate
// (vpadal) to widen the counts. Processes the 4x4 tile four 128-bit
// quarters per 512-bit k-block. Byte counters are widened every block, so
// no overflow management is needed. (Compile-guarded: exercised on ARM
// builds; x86 hosts use the AVX-512/AVX2 kernels below.)
void KernelNeon4x4(const std::uint64_t* apanel, const std::uint64_t* bpanel,
                   int k_blocks, std::int32_t acc_out[kBgemmMr][kBgemmNr]) {
  uint32x4_t acc[kBgemmMr][kBgemmNr];
  for (int i = 0; i < kBgemmMr; ++i)
    for (int j = 0; j < kBgemmNr; ++j) acc[i][j] = vdupq_n_u32(0);

  for (int kb = 0; kb < k_blocks; ++kb) {
    const std::uint64_t* a =
        apanel + static_cast<std::int64_t>(kb) * kBgemmMr * kBgemmKWords64;
    const std::uint64_t* b =
        bpanel + static_cast<std::int64_t>(kb) * kBgemmNr * kBgemmKWords64;
    for (int i = 0; i < kBgemmMr; ++i) {
      uint8x16_t av[4];
      for (int h = 0; h < 4; ++h) {
        av[h] = vreinterpretq_u8_u64(vld1q_u64(a + i * kBgemmKWords64 + 2 * h));
      }
      for (int j = 0; j < kBgemmNr; ++j) {
        const std::uint64_t* bj = b + j * kBgemmKWords64;
        // eor + cnt on all four quarters; byte counts <= 8 per lane.
        const uint8x16_t c0 =
            vcntq_u8(veorq_u8(av[0], vreinterpretq_u8_u64(vld1q_u64(bj))));
        const uint8x16_t c1 =
            vcntq_u8(veorq_u8(av[1], vreinterpretq_u8_u64(vld1q_u64(bj + 2))));
        const uint8x16_t c2 =
            vcntq_u8(veorq_u8(av[2], vreinterpretq_u8_u64(vld1q_u64(bj + 4))));
        const uint8x16_t c3 =
            vcntq_u8(veorq_u8(av[3], vreinterpretq_u8_u64(vld1q_u64(bj + 6))));
        // 8-bit -> 16-bit pairwise adds, then accumulate into 32-bit lanes.
        const uint16x8_t s =
            vaddq_u16(vaddq_u16(vpaddlq_u8(c0), vpaddlq_u8(c1)),
                      vaddq_u16(vpaddlq_u8(c2), vpaddlq_u8(c3)));
        acc[i][j] = vpadalq_u16(acc[i][j], s);
      }
    }
  }
  for (int i = 0; i < kBgemmMr; ++i) {
    for (int j = 0; j < kBgemmNr; ++j) {
      acc_out[i][j] = static_cast<std::int32_t>(
          vgetq_lane_u32(acc[i][j], 0) + vgetq_lane_u32(acc[i][j], 1) +
          vgetq_lane_u32(acc[i][j], 2) + vgetq_lane_u32(acc[i][j], 3));
    }
  }
}
#endif  // __ARM_NEON

#if defined(__AVX512VPOPCNTDQ__) && defined(__AVX512VL__)
#define LCE_BGEMM_AVX512 1
// AVX-512 micro-kernel: full 4x4 register tile using the hardware vector
// popcount (vpopcntq) on whole zmm registers, the closest x86 analogue of
// the paper's NEON cnt path -- one xor + one popcount + one add per 512
// binary MACs. 16 accumulators + 4 B operands + 1 A operand use 21 of the
// 32 zmm registers.
void KernelAvx512_4x4(const std::uint64_t* apanel, const std::uint64_t* bpanel,
                      int k_blocks, std::int32_t acc_out[kBgemmMr][kBgemmNr]) {
  __m512i acc[kBgemmMr][kBgemmNr];
  for (int i = 0; i < kBgemmMr; ++i)
    for (int j = 0; j < kBgemmNr; ++j) acc[i][j] = _mm512_setzero_si512();

  for (int kb = 0; kb < k_blocks; ++kb) {
    const std::uint64_t* a =
        apanel + static_cast<std::int64_t>(kb) * kBgemmMr * kBgemmKWords64;
    const std::uint64_t* b =
        bpanel + static_cast<std::int64_t>(kb) * kBgemmNr * kBgemmKWords64;
    __m512i bv[kBgemmNr];
    for (int j = 0; j < kBgemmNr; ++j) {
      bv[j] = _mm512_load_si512(b + j * kBgemmKWords64);
    }
    for (int i = 0; i < kBgemmMr; ++i) {
      const __m512i av = _mm512_load_si512(a + i * kBgemmKWords64);
      for (int j = 0; j < kBgemmNr; ++j) {
        acc[i][j] = _mm512_add_epi64(
            acc[i][j], _mm512_popcnt_epi64(_mm512_xor_si512(av, bv[j])));
      }
    }
  }
  // Vectorized horizontal reduction: collapse row i's four 8-lane
  // accumulators into one xmm of four int32 sums with a tree of adds --
  // roughly 3x fewer uops than 16 independent reduce_add calls, which
  // matters for the small-k tiles of early conv layers where the epilogue
  // rivals the popcount loop itself.
  for (int i = 0; i < kBgemmMr; ++i) {
    __m256i r[kBgemmNr];
    for (int j = 0; j < kBgemmNr; ++j) {
      r[j] = _mm256_add_epi64(_mm512_castsi512_si256(acc[i][j]),
                              _mm512_extracti64x4_epi64(acc[i][j], 1));
    }
    const __m256i s01 = _mm256_add_epi64(_mm256_unpacklo_epi64(r[0], r[1]),
                                         _mm256_unpackhi_epi64(r[0], r[1]));
    const __m256i s23 = _mm256_add_epi64(_mm256_unpacklo_epi64(r[2], r[3]),
                                         _mm256_unpackhi_epi64(r[2], r[3]));
    const __m256i s =
        _mm256_add_epi64(_mm256_permute2x128_si256(s01, s23, 0x20),
                         _mm256_permute2x128_si256(s01, s23, 0x31));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc_out[i]),
                     _mm256_cvtepi64_epi32(s));
  }
}
#endif  // AVX512VPOPCNTDQ && AVX512VL

#ifdef __AVX2__
// AVX2 micro-kernel processing two LHS rows against four RHS rows, each
// 512-bit k-block as two 256-bit halves. Popcount of each XOR result is
// computed with the classic nibble-LUT pshufb sequence and accumulated via
// sad_epu8 into 64-bit lanes. This mirrors the role of the paper's NEON
// eor/cnt/addp/uadalp sequence.
void KernelAvx2_2x4(const std::uint64_t* apanel, const std::uint64_t* bpanel,
                    int row_pair, int k_blocks,
                    std::int32_t acc_out[2][kBgemmNr]) {
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
                                       3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2,
                                       2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc[2][kBgemmNr];
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < kBgemmNr; ++j) acc[i][j] = zero;

  for (int kb = 0; kb < k_blocks; ++kb) {
    for (int h = 0; h < 2; ++h) {  // 256-bit halves of the 512-bit block
      const std::uint64_t* a =
          apanel +
          (static_cast<std::int64_t>(kb) * kBgemmMr + 2 * row_pair) *
              kBgemmKWords64 +
          4 * h;
      const std::uint64_t* b =
          bpanel + static_cast<std::int64_t>(kb) * kBgemmNr * kBgemmKWords64 +
          4 * h;
      const __m256i a0 = _mm256_load_si256(reinterpret_cast<const __m256i*>(a));
      const __m256i a1 = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(a + kBgemmKWords64));
      for (int j = 0; j < kBgemmNr; ++j) {
        const __m256i bj = _mm256_load_si256(
            reinterpret_cast<const __m256i*>(b + j * kBgemmKWords64));
        const __m256i x0 = _mm256_xor_si256(a0, bj);
        const __m256i x1 = _mm256_xor_si256(a1, bj);
        // popcount bytes of x0, x1.
        const __m256i c0 = _mm256_add_epi8(
            _mm256_shuffle_epi8(lut, _mm256_and_si256(x0, low_mask)),
            _mm256_shuffle_epi8(
                lut, _mm256_and_si256(_mm256_srli_epi32(x0, 4), low_mask)));
        const __m256i c1 = _mm256_add_epi8(
            _mm256_shuffle_epi8(lut, _mm256_and_si256(x1, low_mask)),
            _mm256_shuffle_epi8(
                lut, _mm256_and_si256(_mm256_srli_epi32(x1, 4), low_mask)));
        acc[0][j] = _mm256_add_epi64(acc[0][j], _mm256_sad_epu8(c0, zero));
        acc[1][j] = _mm256_add_epi64(acc[1][j], _mm256_sad_epu8(c1, zero));
      }
    }
  }
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < kBgemmNr; ++j) {
      alignas(32) std::uint64_t lanes[4];
      _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc[i][j]);
      acc_out[i][j] =
          static_cast<std::int32_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
    }
  }
}
#endif  // __AVX2__

}  // namespace

void BGemmComputeTile(const std::uint64_t* apanel, const std::uint64_t* bpanel,
                      int k_blocks, KernelProfile profile,
                      std::int32_t acc[kBgemmMr][kBgemmNr]) {
#ifdef LCE_BGEMM_AVX512
  if (profile == KernelProfile::kSimd) {
    KernelAvx512_4x4(apanel, bpanel, k_blocks, acc);
    return;
  }
#endif
#ifdef LCE_BGEMM_NEON
  if (profile == KernelProfile::kSimd) {
    KernelNeon4x4(apanel, bpanel, k_blocks, acc);
    return;
  }
#endif
#ifdef __AVX2__
  if (profile == KernelProfile::kSimd) {
    std::int32_t acc2[2][kBgemmNr];
    KernelAvx2_2x4(apanel, bpanel, 0, k_blocks, acc2);
    std::memcpy(acc[0], acc2, sizeof(acc2));
    KernelAvx2_2x4(apanel, bpanel, 1, k_blocks, acc2);
    std::memcpy(acc[2], acc2, sizeof(acc2));
    return;
  }
#else
  (void)profile;
#endif
  KernelScalar4x4(apanel, bpanel, k_blocks, acc);
}

void BGemmComputeBlock(const std::uint64_t* apanels, std::int64_t a_elems,
                       const PackedBinaryMatrix& rhs, int k_bits,
                       KernelProfile profile, int block_tiles, int block_rows,
                       std::int32_t* out, int ldc) {
  const int k_blocks = rhs.k_blocks();
  const int n = rhs.n();
  std::int32_t acc[kBgemmMr][kBgemmNr];
  for (int nt = 0; nt < rhs.num_tiles(); ++nt) {
    const int col0 = nt * kBgemmNr;
    const int cols = std::min(kBgemmNr, n - col0);
    const std::uint64_t* btile = rhs.tile(nt);
    for (int t = 0; t < block_tiles; ++t) {
      const int row0 = t * kBgemmMr;
      const int rows = std::min(kBgemmMr, block_rows - row0);
      BGemmComputeTile(apanels + t * a_elems, btile, k_blocks, profile, acc);
      for (int i = 0; i < rows; ++i) {
        std::int32_t* o = out + static_cast<std::int64_t>(row0 + i) * ldc + col0;
        for (int j = 0; j < cols; ++j) o[j] = k_bits - 2 * acc[i][j];
      }
    }
  }
}

PackedBinaryMatrix::PackedBinaryMatrix(const TBitpacked* rows, int n, int kw)
    : n_(n), kw_(kw), k_blocks_(BGemmKBlocks(kw)) {
  LCE_TRACE_SCOPE_CAT("bgemm/pack_weights", "gemm");
  num_tiles_ = (n + kBgemmNr - 1) / kBgemmNr;
  buf_ = AlignedBuffer(static_cast<std::size_t>(num_tiles_) * tile_elems() *
                       sizeof(std::uint64_t));
  auto* d = reinterpret_cast<std::uint64_t*>(buf_.data());
  for (int t = 0; t < num_tiles_; ++t) {
    BGemmPackLhsTile(rows, n, kw, t * kBgemmNr, kBgemmNr, k_blocks_,
                     d + static_cast<std::int64_t>(t) * tile_elems());
  }
}

void BGemm(const TBitpacked* lhs, int m, const PackedBinaryMatrix& rhs,
           int k_bits, std::int32_t* out, int ldc, Context& ctx) {
  const int kw = rhs.kw();
  const int k_blocks = rhs.k_blocks();
  const int m_tiles = (m + kBgemmMr - 1) / kBgemmMr;
  const std::int64_t a_tile_elems =
      static_cast<std::int64_t>(k_blocks) * kBgemmMr * kBgemmKWords64;

  // One BGEMM computes m x n dot products of k_bits binary positions each.
  static telemetry::Metric* macs =
      telemetry::MetricsRegistry::Global().Counter("bgemm.binary_macs");
  macs->Add(static_cast<std::int64_t>(m) * rhs.n() * k_bits);

  // Pack all LHS tiles into scratch (slot 0).
  auto* apanels = reinterpret_cast<std::uint64_t*>(ctx.Scratch(
      0, static_cast<std::size_t>(m_tiles) * a_tile_elems * sizeof(std::uint64_t)));
  {
    LCE_TRACE_SCOPE_CAT("bgemm/pack", "gemm");
    ctx.pool().ParallelFor(m_tiles, [&](std::int64_t begin, std::int64_t end) {
      for (std::int64_t t = begin; t < end; ++t) {
        BGemmPackLhsTile(lhs, m, kw, static_cast<int>(t) * kBgemmMr, kBgemmMr,
                         k_blocks, apanels + t * a_tile_elems);
      }
    });
  }

  const KernelProfile profile = ctx.profile();
  const int n = rhs.n();
  LCE_TRACE_SCOPE_CAT("bgemm/compute", "gemm");
  // B-tile-outer loop order: each packed weight tile stays cache-resident
  // across all activation tiles of the shard (see float_gemm.cc).
  ctx.pool().ParallelFor(m_tiles, [&](std::int64_t begin, std::int64_t end) {
    std::int32_t acc[kBgemmMr][kBgemmNr];
    for (int nt = 0; nt < rhs.num_tiles(); ++nt) {
      const int col0 = nt * kBgemmNr;
      const int cols = std::min(kBgemmNr, n - col0);
      for (std::int64_t mt = begin; mt < end; ++mt) {
        const int row0 = static_cast<int>(mt) * kBgemmMr;
        const int rows = std::min(kBgemmMr, m - row0);
        BGemmComputeTile(apanels + mt * a_tile_elems, rhs.tile(nt), k_blocks,
                         profile, acc);
        for (int i = 0; i < rows; ++i) {
          std::int32_t* o = out + static_cast<std::int64_t>(row0 + i) * ldc + col0;
          for (int j = 0; j < cols; ++j) o[j] = k_bits - 2 * acc[i][j];
        }
      }
    }
  });
}

void BGemm(const TBitpacked* lhs, int m, const TBitpacked* rhs, int n, int kw,
           int k_bits, std::int32_t* out, int ldc, Context& ctx) {
  PackedBinaryMatrix packed(rhs, n, kw);
  BGemm(lhs, m, packed, k_bits, out, ldc, ctx);
}

bool HasSimdBGemm() {
#ifdef __AVX2__
  return true;
#else
  return false;
#endif
}

}  // namespace lce::gemm
