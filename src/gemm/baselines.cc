#include "gemm/baselines.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace lce::gemm {
namespace {

// Unaligned-safe 64-bit load of two consecutive 32-bit words (the trailing
// odd word is handled by the callers).
inline std::uint64_t Load64(const TBitpacked* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

void DaBnnStyleBGemm(const TBitpacked* lhs, int m, const TBitpacked* rhs,
                     int n, int kw, int k_bits, std::int32_t* out, int ldc) {
  // 2x2 register blocking over unpacked row-major operands.
  const int kw64 = kw / 2;
  const bool tail = (kw % 2) != 0;
  for (int i0 = 0; i0 < m; i0 += 2) {
    const int ilim = std::min(2, m - i0);
    for (int j0 = 0; j0 < n; j0 += 2) {
      const int jlim = std::min(2, n - j0);
      std::int32_t acc[2][2] = {};
      for (int i = 0; i < ilim; ++i) {
        const TBitpacked* a = lhs + static_cast<std::int64_t>(i0 + i) * kw;
        for (int j = 0; j < jlim; ++j) {
          const TBitpacked* b = rhs + static_cast<std::int64_t>(j0 + j) * kw;
          std::int32_t s = 0;
          for (int w = 0; w < kw64; ++w) {
            s += std::popcount(Load64(a + 2 * w) ^ Load64(b + 2 * w));
          }
          if (tail) s += std::popcount(a[kw - 1] ^ b[kw - 1]);
          acc[i][j] = s;
        }
      }
      for (int i = 0; i < ilim; ++i) {
        for (int j = 0; j < jlim; ++j) {
          out[static_cast<std::int64_t>(i0 + i) * ldc + j0 + j] =
              k_bits - 2 * acc[i][j];
        }
      }
    }
  }
}

void TvmStyleBGemm(const TBitpacked* lhs, int m, const TBitpacked* rhs, int n,
                   int kw, int k_bits, std::int32_t* out, int ldc) {
  // Plain loop nest over 32-bit words; no blocking, no packing. The popcount
  // runs on 32-bit words as generic codegen would emit for packed uint32.
  for (int i = 0; i < m; ++i) {
    const TBitpacked* a = lhs + static_cast<std::int64_t>(i) * kw;
    for (int j = 0; j < n; ++j) {
      const TBitpacked* b = rhs + static_cast<std::int64_t>(j) * kw;
      std::int32_t s = 0;
      for (int w = 0; w < kw; ++w) s += std::popcount(a[w] ^ b[w]);
      out[static_cast<std::int64_t>(i) * ldc + j] = k_bits - 2 * s;
    }
  }
}

void BmxnetStyleBGemm(const TBitpacked* lhs, int m, const TBitpacked* rhs,
                      int n, int kw, int k_bits, std::int32_t* out, int ldc) {
  // BMXNet iterates k in the outer loop over an output accumulator matrix,
  // i.e. a rank-1-update formulation with no register accumulation -- each
  // partial sum round-trips through memory.
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      out[static_cast<std::int64_t>(i) * ldc + j] = 0;
    }
  }
  for (int w = 0; w < kw; ++w) {
    for (int i = 0; i < m; ++i) {
      const TBitpacked a = lhs[static_cast<std::int64_t>(i) * kw + w];
      std::int32_t* o = out + static_cast<std::int64_t>(i) * ldc;
      for (int j = 0; j < n; ++j) {
        o[j] += std::popcount(a ^ rhs[static_cast<std::int64_t>(j) * kw + w]);
      }
    }
  }
  for (int i = 0; i < m; ++i) {
    std::int32_t* o = out + static_cast<std::int64_t>(i) * ldc;
    for (int j = 0; j < n; ++j) o[j] = k_bits - 2 * o[j];
  }
}

}  // namespace lce::gemm
