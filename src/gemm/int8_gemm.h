// Packed int8 GEMM with int32 accumulation, standing in for TFLite's
// quantized Ruy path (the paper's "sdot" column in Table 1).
//
// Computes exact int8 dot products:
//   out[m][n] = sum_k (int32)lhs[m][k] * (int32)rhs[n][k]
// Zero-point handling (offsets, requantization) is done by the calling
// convolution kernel.
//
// The AVX2 kernel uses the maddubs trick: activations are biased to uint8 by
// XOR 0x80 during packing and the 128*rowsum(rhs) correction (precomputed at
// RHS pack time) is subtracted at the end, so the public contract stays an
// exact signed dot product.
#ifndef LCE_GEMM_INT8_GEMM_H_
#define LCE_GEMM_INT8_GEMM_H_

#include <cstdint>
#include <vector>

#include "core/aligned_buffer.h"
#include "gemm/context.h"
#include "gemm/int8_isa.h"

namespace lce::gemm {

inline constexpr int kInt8Mr = 2;
inline constexpr int kInt8Nr = 4;
inline constexpr int kInt8Kc = 32;  // k-block: 32 bytes per step

class PackedInt8Matrix {
 public:
  PackedInt8Matrix() = default;
  PackedInt8Matrix(const std::int8_t* rows, int n, int k);

  int n() const { return n_; }
  int k() const { return k_; }
  int k_blocks() const { return k_blocks_; }
  int num_tiles() const { return num_tiles_; }
  const std::int8_t* tile(int t) const {
    return reinterpret_cast<const std::int8_t*>(buf_.data()) +
           static_cast<std::int64_t>(t) * tile_elems();
  }
  std::int64_t tile_elems() const {
    return static_cast<std::int64_t>(k_blocks_) * kInt8Nr * kInt8Kc;
  }
  // Row sums of the original matrix (used both for the maddubs correction
  // and by conv kernels for input zero-point handling).
  const std::vector<std::int32_t>& row_sums() const { return row_sums_; }

 private:
  int n_ = 0;
  int k_ = 0;
  int k_blocks_ = 0;
  int num_tiles_ = 0;
  AlignedBuffer buf_;
  std::vector<std::int32_t> row_sums_;
};

// Packs `rows` rows (starting at `row0`, padded beyond `n`) of a [n][k]
// int8 matrix into the [k_blocks][rows][kInt8Kc] panel layout consumed by
// the micro-kernels. With `bias` set, each byte is XORed with 0x80 (maps
// int8 x to uint8 x+128, the maddubs trick) and padding bytes become
// 0x80 = biased zero; without bias, padding bytes are 0. Used for LHS
// packing here, weight packing (PackedInt8Matrix) and the fused int8
// gather-pack (kernels/pipeline/gather_pack.h).
void Int8GemmPackLhsTile(const std::int8_t* src, int n, int k, int row0,
                         int rows, int k_blocks, bool bias, std::int8_t* dst);

// One micro-kernel invocation: a kInt8Mr x kInt8Nr tile of exact widened
// multiply-add accumulators over `k_blocks` panel steps, dispatched to the
// best kernel for `profile` (AVX-512BW / AVX2 / scalar). The A-panel holds
// biased (x+128) activations; the raw accumulator still includes the
// +128 bias -- callers must subtract 128 * rhs row sums.
void Int8ComputeTile(const std::int8_t* apanel, const std::int8_t* bpanel,
                     int k_blocks, KernelProfile profile,
                     std::int32_t acc[kInt8Mr][kInt8Nr]);

// Computes `block_rows` x rhs.n() exact int8 dot products from `block_tiles`
// consecutive biased A-panels (each `a_elems` bytes, starting at `apanels`),
// writing into `out` (row-major, leading dimension `ldc`). The 128*rowsum
// bias correction is applied internally. nt-outer / tile-inner loop order
// for weight-tile reuse -- the int8 compute core of the fused ConvPipeline.
void Int8ComputeBlock(const std::int8_t* apanels, std::int64_t a_elems,
                      const PackedInt8Matrix& rhs, KernelProfile profile,
                      int block_tiles, int block_rows, std::int32_t* out,
                      int ldc);

void Int8Gemm(const std::int8_t* lhs, int m, const PackedInt8Matrix& rhs,
              std::int32_t* out, int ldc, Context& ctx);

void Int8Gemm(const std::int8_t* lhs, int m, const std::int8_t* rhs, int n,
              int k, std::int32_t* out, int ldc, Context& ctx);

// ---------------------------------------------------------------------------
// Dot-product tier (gemm/int8_isa.h): AVX-512 VNNI / AVX2 maddubs / NEON sdot
// ---------------------------------------------------------------------------

inline constexpr int kInt8DotNr = 16;  // output channels per dot panel
inline constexpr int kInt8DotKg = 4;   // K bytes per dot-product group

// Weight panels for the dot-product kernels. Each panel covers kInt8DotNr
// output channels; within a panel, layout is [k_groups][kInt8DotNr][4]:
// one 4-byte K-group of all 16 channels is a contiguous 64-byte line (a
// zmm register for vpdpbusd, two ymm for the AVX2 kernel, four NEON q
// registers for sdot). K is zero-padded to a multiple of kInt8DotKg, so
// padding never contributes to a dot product. Built once at kernel
// construction (Compile()) time alongside PackedInt8Matrix; the compute
// loop is panel-outer / row-inner, holding one panel L1-resident across
// every row of a block before streaming the next (weight-stationary).
class PackedInt8DotPanels {
 public:
  PackedInt8DotPanels() = default;
  PackedInt8DotPanels(const std::int8_t* rows, int n, int k);

  int n() const { return n_; }
  int k() const { return k_; }
  int k_groups() const { return k_groups_; }
  int num_panels() const { return num_panels_; }
  bool empty() const { return n_ == 0; }
  std::int64_t panel_bytes() const {
    return static_cast<std::int64_t>(k_groups_) * kInt8DotNr * kInt8DotKg;
  }
  const std::int8_t* panel(int p) const {
    return reinterpret_cast<const std::int8_t*>(buf_.data()) +
           static_cast<std::int64_t>(p) * panel_bytes();
  }
  // Row sums of the original matrix: the biased (u8 x s8) kernels remove
  // their +128 activation bias with `128 * row_sums[col]`. Padded with
  // zeros to num_panels() * kInt8DotNr entries so per-panel vector loads
  // need no mask.
  const std::vector<std::int32_t>& row_sums() const { return row_sums_; }

 private:
  int n_ = 0;
  int k_ = 0;
  int k_groups_ = 0;
  int num_panels_ = 0;
  AlignedBuffer buf_;
  std::vector<std::int32_t> row_sums_;
};

// Exact signed dot products straight from staged (un-interleaved) patch
// rows: `arows` holds `block_rows` raw int8 rows, row-major with leading
// dimension `lda` = k_groups * kInt8DotKg bytes, zero-padded past k — the
// layout the byte-gather stage produces without any panel interleave pass.
// Writes block_rows x rhs.n() into `out` (leading dimension `ldc`). `tier`
// must be a dot-product tier or kScalar (the portable reference, also the
// fallback when the requested kernel is not compiled in). The +128-bias
// bookkeeping of the u8 x s8 kernels is internal; the result is always the
// exact widened dot product.
void Int8DotComputeBlock(const std::int8_t* arows, int lda,
                         const PackedInt8DotPanels& rhs, Int8Tier tier,
                         int block_rows, std::int32_t* out, int ldc);

}  // namespace lce::gemm

#endif  // LCE_GEMM_INT8_GEMM_H_
