// Packed int8 GEMM with int32 accumulation, standing in for TFLite's
// quantized Ruy path (the paper's "sdot" column in Table 1).
//
// Computes exact int8 dot products:
//   out[m][n] = sum_k (int32)lhs[m][k] * (int32)rhs[n][k]
// Zero-point handling (offsets, requantization) is done by the calling
// convolution kernel.
//
// The AVX2 kernel uses the maddubs trick: activations are biased to uint8 by
// XOR 0x80 during packing and the 128*rowsum(rhs) correction (precomputed at
// RHS pack time) is subtracted at the end, so the public contract stays an
// exact signed dot product.
#ifndef LCE_GEMM_INT8_GEMM_H_
#define LCE_GEMM_INT8_GEMM_H_

#include <cstdint>
#include <vector>

#include "core/aligned_buffer.h"
#include "gemm/context.h"

namespace lce::gemm {

inline constexpr int kInt8Mr = 2;
inline constexpr int kInt8Nr = 4;
inline constexpr int kInt8Kc = 32;  // k-block: 32 bytes per step

class PackedInt8Matrix {
 public:
  PackedInt8Matrix() = default;
  PackedInt8Matrix(const std::int8_t* rows, int n, int k);

  int n() const { return n_; }
  int k() const { return k_; }
  int k_blocks() const { return k_blocks_; }
  int num_tiles() const { return num_tiles_; }
  const std::int8_t* tile(int t) const {
    return reinterpret_cast<const std::int8_t*>(buf_.data()) +
           static_cast<std::int64_t>(t) * tile_elems();
  }
  std::int64_t tile_elems() const {
    return static_cast<std::int64_t>(k_blocks_) * kInt8Nr * kInt8Kc;
  }
  // Row sums of the original matrix (used both for the maddubs correction
  // and by conv kernels for input zero-point handling).
  const std::vector<std::int32_t>& row_sums() const { return row_sums_; }

 private:
  int n_ = 0;
  int k_ = 0;
  int k_blocks_ = 0;
  int num_tiles_ = 0;
  AlignedBuffer buf_;
  std::vector<std::int32_t> row_sums_;
};

void Int8Gemm(const std::int8_t* lhs, int m, const PackedInt8Matrix& rhs,
              std::int32_t* out, int ldc, Context& ctx);

void Int8Gemm(const std::int8_t* lhs, int m, const std::int8_t* rhs, int n,
              int k, std::int32_t* out, int ldc, Context& ctx);

}  // namespace lce::gemm

#endif  // LCE_GEMM_INT8_GEMM_H_
