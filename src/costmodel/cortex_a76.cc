#include "costmodel/cortex_a76.h"

#include <algorithm>

#include "core/macros.h"

namespace lce::costmodel {
namespace {

constexpr std::uint8_t kV0 = 1, kV1 = 2, kBoth = 3;

}  // namespace

// Arm Cortex-A76 Software Optimization Guide, ASIMD section. Dual-issue
// instructions (throughput 2) can go to either pipe; throughput-1
// instructions are restricted to a single pipe.
const InstrSpec& Fmla() {
  static const InstrSpec s{"fmla", 2.0, kBoth};
  return s;
}
const InstrSpec& Sdot() {
  static const InstrSpec s{"sdot", 2.0, kBoth};
  return s;
}
const InstrSpec& Eor() {
  static const InstrSpec s{"eor", 2.0, kBoth};
  return s;
}
const InstrSpec& Cnt() {
  static const InstrSpec s{"cnt", 1.0, kV1};
  return s;
}
const InstrSpec& Addp() {
  static const InstrSpec s{"addp", 2.0, kBoth};
  return s;
}
const InstrSpec& Uadalp() {
  static const InstrSpec s{"uadalp", 1.0, kV1};
  return s;
}

double ScheduleCycles(const std::vector<const InstrSpec*>& sequence) {
  // Greedy two-pipe list scheduler: each cycle each pipe issues at most one
  // instruction; pipe-restricted instructions wait for their pipe. One
  // drain cycle models the dependent reduction tail.
  int remaining_v0_only = 0;  // none in the current table
  int remaining_v1_only = 0;
  int remaining_any = 0;
  for (const InstrSpec* i : sequence) {
    if (i->port_mask == kV0) {
      ++remaining_v0_only;
    } else if (i->port_mask == kV1) {
      ++remaining_v1_only;
    } else {
      ++remaining_any;
    }
  }
  int cycles = 0;
  while (remaining_v0_only + remaining_v1_only + remaining_any > 0) {
    ++cycles;
    // Pipe V1 prefers its restricted instructions.
    if (remaining_v1_only > 0) {
      --remaining_v1_only;
    } else if (remaining_any > 0) {
      --remaining_any;
    }
    // Pipe V0 likewise.
    if (remaining_v0_only > 0) {
      --remaining_v0_only;
    } else if (remaining_any > 0) {
      --remaining_any;
    }
  }
  return cycles + 1;  // +1 drain cycle for the dependent tail
}

MacSequenceAnalysis AnalyzeMacSequence(MacPrecision precision) {
  MacSequenceAnalysis a;
  a.precision = precision;
  switch (precision) {
    case MacPrecision::kFloat32: {
      // fmla: 4 fp32 MACs per instruction, 2 instructions/cycle sustained.
      a.instruction_names = {"fmla"};
      a.instructions = 1;
      a.macs = 4;
      a.cycles = 1.0 / Fmla().throughput;
      break;
    }
    case MacPrecision::kInt8: {
      // sdot: 16 int8 MACs per instruction, 2 instructions/cycle sustained.
      a.instruction_names = {"sdot"};
      a.instructions = 1;
      a.macs = 16;
      a.cycles = 1.0 / Sdot().throughput;
      break;
    }
    case MacPrecision::kBinary: {
      // Per 8 x 128-bit registers = 1024 binary MACs (the paper's unit):
      // 8 eor (multiply), 8 cnt (per-byte popcount), 4 addp (8-bit pairwise
      // combine), 4 uadalp (accumulate into 16-bit) -- 24 instructions.
      a.instruction_names = {"eor", "cnt", "addp", "uadalp"};
      std::vector<const InstrSpec*> seq;
      for (int i = 0; i < 8; ++i) seq.push_back(&Eor());
      for (int i = 0; i < 8; ++i) seq.push_back(&Cnt());
      for (int i = 0; i < 4; ++i) seq.push_back(&Addp());
      for (int i = 0; i < 4; ++i) seq.push_back(&Uadalp());
      a.instructions = static_cast<int>(seq.size());
      a.macs = 1024;
      a.cycles = ScheduleCycles(seq);
      break;
    }
  }
  a.macs_per_cycle = static_cast<double>(a.macs) / a.cycles;
  return a;
}

namespace {

double MacsPerCycle(MacPrecision p) { return AnalyzeMacSequence(p).macs_per_cycle; }

double BitsPerValue(MacPrecision p) {
  switch (p) {
    case MacPrecision::kFloat32:
      return 32.0;
    case MacPrecision::kInt8:
      return 8.0;
    case MacPrecision::kBinary:
      return 1.0;
  }
  return 32.0;
}

}  // namespace

double TheoreticalSpeedup(MacPrecision slow, MacPrecision fast) {
  return MacsPerCycle(fast) / MacsPerCycle(slow);
}

double MemoryTrafficRatio(MacPrecision slow, MacPrecision fast) {
  return BitsPerValue(slow) / BitsPerValue(fast);
}

}  // namespace lce::costmodel
