#include "costmodel/x86_int8.h"

#include <cmath>

#include "core/macros.h"

namespace lce::costmodel {
namespace {

constexpr std::uint8_t kP0 = 1, kP1 = 2, kP5 = 4;
constexpr std::uint8_t kP01 = kP0 | kP1;
constexpr std::uint8_t kAny = kP0 | kP1 | kP5;

int PopCount3(std::uint8_t mask) {
  return (mask & 1) + ((mask >> 1) & 1) + ((mask >> 2) & 1);
}

}  // namespace

// SIMD integer multiply-adds issue on ports 0 and 1 (throughput 2);
// shuffles/broadcasts/widening converts are port-5-only (throughput 1);
// logic and adds go anywhere (throughput 3).
const InstrSpec& Vpdpbusd() {
  static const InstrSpec s{"vpdpbusd", 2.0, kP01};
  return s;
}
const InstrSpec& Vpmaddubsw() {
  static const InstrSpec s{"vpmaddubsw", 2.0, kP01};
  return s;
}
const InstrSpec& Vpmaddwd() {
  static const InstrSpec s{"vpmaddwd", 2.0, kP01};
  return s;
}
const InstrSpec& Vpmovzx() {
  static const InstrSpec s{"vpmovzx", 1.0, kP5};
  return s;
}
const InstrSpec& Vpand() {
  static const InstrSpec s{"vpand", 3.0, kAny};
  return s;
}
const InstrSpec& Vpaddd() {
  static const InstrSpec s{"vpaddd", 3.0, kAny};
  return s;
}
const InstrSpec& Vpbroadcastd() {
  static const InstrSpec s{"vpbroadcastd", 1.0, kP5};
  return s;
}

double ScheduleCyclesX86(const std::vector<const InstrSpec*>& sequence) {
  // Remaining instruction count per port mask (masks are 3-bit).
  int remaining[8] = {0};
  int total = 0;
  for (const InstrSpec* i : sequence) {
    LCE_CHECK(i->port_mask >= 1 && i->port_mask <= 7);
    ++remaining[i->port_mask];
    ++total;
  }
  int cycles = 0;
  while (total > 0) {
    ++cycles;
    for (std::uint8_t port = 1; port <= 4; port <<= 1) {
      // Among masks this port can serve, issue the most-constrained
      // (fewest allowed ports) first -- the same greedy the A76 scheduler
      // uses, generalized to three ports.
      int best_mask = -1;
      for (int mask = 1; mask <= 7; ++mask) {
        if (!(mask & port) || remaining[mask] == 0) continue;
        if (best_mask < 0 || PopCount3(static_cast<std::uint8_t>(mask)) <
                                 PopCount3(static_cast<std::uint8_t>(best_mask))) {
          best_mask = mask;
        }
      }
      if (best_mask >= 0) {
        --remaining[best_mask];
        --total;
      }
    }
  }
  return cycles + 1;  // +1 drain cycle for the dependent tail
}

Int8TierAnalysis AnalyzeInt8Tier(X86Int8Tier tier) {
  Int8TierAnalysis a;
  a.tier = tier;
  a.macs = 256;  // 16 output channels x 16 K bytes
  std::vector<const InstrSpec*> seq;
  switch (tier) {
    case X86Int8Tier::kScalar:
      // Portable widened-dot loop: one multiply-accumulate per cycle is
      // generous (load + sext + imul + add), but the point of the scalar
      // row is its order of magnitude, not its third digit.
      a.instruction_names = {"scalar mac"};
      a.instructions = 256;
      a.cycles = 256.0;
      a.macs_per_cycle = 1.0;
      return a;
    case X86Int8Tier::kVnni:
      // 4 K-groups of 16 channels: one broadcast + one vpdpbusd per group
      // does multiply, widen, 4-way reduce, and i32 accumulate in a single
      // port-0/1 instruction. Port 5 (broadcast) is the critical resource.
      a.instruction_names = {"vpbroadcastd", "vpdpbusd"};
      for (int i = 0; i < 4; ++i) seq.push_back(&Vpbroadcastd());
      for (int i = 0; i < 4; ++i) seq.push_back(&Vpdpbusd());
      break;
    case X86Int8Tier::kWidenedAvx512:
      // 16 channels x 16 K in the kInt8Kc panel layout: widen both
      // operands' bytes to i16 (port-5 converts), 8 vpmaddwd, 8 vpaddd
      // into the i32 accumulators.
      a.instruction_names = {"vpmovzx", "vpmaddwd", "vpaddd"};
      for (int i = 0; i < 6; ++i) seq.push_back(&Vpmovzx());
      for (int i = 0; i < 8; ++i) seq.push_back(&Vpmaddwd());
      for (int i = 0; i < 8; ++i) seq.push_back(&Vpaddd());
      break;
    case X86Int8Tier::kDotAvx2:
      // The saturation-safe AVX2 dot kernel (gemm/int8_gemm.cc): per
      // 4-byte K-group and 16 channels (two ymm halves), the even/odd
      // byte split costs 2 vpand + 2 vpmaddubsw + 2 vpmaddwd + 2 vpaddd
      // per half; 4 groups -> 16 of each, plus one broadcast per group.
      a.instruction_names = {"vpbroadcastd", "vpand", "vpmaddubsw",
                             "vpmaddwd", "vpaddd"};
      for (int i = 0; i < 4; ++i) seq.push_back(&Vpbroadcastd());
      for (int i = 0; i < 16; ++i) seq.push_back(&Vpand());
      for (int i = 0; i < 16; ++i) seq.push_back(&Vpmaddubsw());
      for (int i = 0; i < 16; ++i) seq.push_back(&Vpmaddwd());
      for (int i = 0; i < 16; ++i) seq.push_back(&Vpaddd());
      break;
    case X86Int8Tier::kWidenedAvx2:
      // Same structure as kWidenedAvx512 at half the vector width: twice
      // the multiply-adds per 256 MACs and proportionally more converts.
      a.instruction_names = {"vpmovzx", "vpmaddwd", "vpaddd"};
      for (int i = 0; i < 12; ++i) seq.push_back(&Vpmovzx());
      for (int i = 0; i < 16; ++i) seq.push_back(&Vpmaddwd());
      for (int i = 0; i < 16; ++i) seq.push_back(&Vpaddd());
      break;
  }
  a.instructions = static_cast<int>(seq.size());
  a.cycles = ScheduleCyclesX86(seq);
  a.macs_per_cycle = static_cast<double>(a.macs) / a.cycles;
  return a;
}

namespace {

// Per-byte data-movement overheads outside the MAC loop, in cycles/byte.
// The widened tiers run the scalar biased-panel interleave
// (Int8GemmPackLhsTile: a byte load, XOR, and strided store per element --
// ~3 cycles/byte measured); the dot tiers only stage raw rows with memcpy
// (~0.25 cycles/byte). The widened register tile (2x4) also pays a
// horizontal reduce + store of ~24 cycles per tile.
constexpr double kPanelPackCyclesPerByte = 3.0;
constexpr double kRowStageCyclesPerByte = 0.25;
constexpr double kPanelTileReduceCycles = 24.0;
constexpr std::int64_t kPanelMr = 2, kPanelNr = 4;

bool IsDotTier(X86Int8Tier t) {
  return t == X86Int8Tier::kVnni || t == X86Int8Tier::kDotAvx2;
}

}  // namespace

double PredictInt8LayerCycles(X86Int8Tier tier, std::int64_t m,
                              std::int64_t n, std::int64_t k) {
  const double macs = static_cast<double>(m) * n * k;
  double cycles = macs / AnalyzeInt8Tier(tier).macs_per_cycle;
  if (IsDotTier(tier)) {
    cycles += static_cast<double>(m) * k * kRowStageCyclesPerByte;
  } else {
    cycles += static_cast<double>(m) * k * kPanelPackCyclesPerByte;
    cycles += static_cast<double>((m + kPanelMr - 1) / kPanelMr) *
              ((n + kPanelNr - 1) / kPanelNr) * kPanelTileReduceCycles;
  }
  return cycles;
}

double PredictedInt8Speedup(X86Int8Tier baseline, X86Int8Tier candidate,
                            std::int64_t m, std::int64_t n, std::int64_t k) {
  return PredictInt8LayerCycles(baseline, m, n, k) /
         PredictInt8LayerCycles(candidate, m, n, k);
}

const char* X86Int8TierName(X86Int8Tier tier) {
  switch (tier) {
    case X86Int8Tier::kScalar:
      return "scalar";
    case X86Int8Tier::kWidenedAvx2:
      return "widened-avx2";
    case X86Int8Tier::kWidenedAvx512:
      return "widened-avx512";
    case X86Int8Tier::kDotAvx2:
      return "dot-avx2";
    case X86Int8Tier::kVnni:
      return "vnni";
  }
  return "?";
}

}  // namespace lce::costmodel
