// Analytical x86 instruction cost model for the int8 convolution tiers
// (gemm/int8_isa.h): the AVX-512 VNNI and AVX2 dot-product kernels versus
// the widened 16-bit multiply-add kernels they replace. Companion to the
// Cortex-A76 model (costmodel/cortex_a76.h), which covers the paper's
// Table 1; this file explains *which* int8 micro-kernel should win on a
// given x86 core and by how much, and backs the tier-selection order of
// BestInt8Tier().
//
// Port model: a Skylake-X/Ice Lake-class core with three vector issue
// ports. SIMD integer multiply-add (vpdpbusd, vpmaddwd, vpmaddubsw) issues
// on ports 0 and 1; shuffles and broadcasts are restricted to port 5;
// bitwise logic and integer add go to any of the three. Throughputs are
// from the Intel optimization manual / uops.info; the exact numbers matter
// less than the structural result that the widened path spends most of its
// issue slots on widening converts and adds while vpdpbusd folds the
// multiply, widen, and accumulate into one port-0/1 instruction.
#ifndef LCE_COSTMODEL_X86_INT8_H_
#define LCE_COSTMODEL_X86_INT8_H_

#include <cstdint>
#include <string>
#include <vector>

#include "costmodel/cortex_a76.h"  // InstrSpec

namespace lce::costmodel {

// The x86 vector instruction classes used by the int8 MAC sequences.
// InstrSpec::port_mask bits here mean: bit 0 = port 0, bit 1 = port 1,
// bit 2 = port 5.
const InstrSpec& Vpdpbusd();     // VNNI: 4-way u8 x s8 dot + i32 accumulate
const InstrSpec& Vpmaddubsw();   // u8 x s8 -> pairwise i16 (saturating)
const InstrSpec& Vpmaddwd();     // i16 x i16 -> pairwise i32
const InstrSpec& Vpmovzx();      // byte -> word widening convert (shuffle)
const InstrSpec& Vpand();        // bitwise logic (even/odd byte masking)
const InstrSpec& Vpaddd();       // i32 vector add
const InstrSpec& Vpbroadcastd(); // 4-byte activation group broadcast

// Modeled int8 micro-kernel tiers. kWidenedAvx2 and kWidenedAvx512 are the
// two SIMD widths of gemm::Int8Tier::kWidened; the dot tiers map 1:1.
enum class X86Int8Tier {
  kScalar,
  kWidenedAvx2,
  kWidenedAvx512,
  kDotAvx2,
  kVnni,
};

struct Int8TierAnalysis {
  X86Int8Tier tier;
  std::vector<std::string> instruction_names;  // unique instruction classes
  int instructions = 0;  // instructions per 256-MAC unit sequence
  int macs = 0;          // always 256 for the SIMD tiers
  double cycles = 0.0;   // port-scheduled cycle count of the unit sequence
  double macs_per_cycle = 0.0;
};

// Builds and schedules the canonical inner-loop sequence of each tier,
// normalized to 256 MACs (16 output channels x 16 K bytes):
//  * vnni         : 4 vpbroadcastd + 4 vpdpbusd
//  * widened512   : 6 vpmovzx + 8 vpmaddwd + 8 vpaddd
//  * dot-avx2     : 4 vpbroadcastd + 16 vpand + 16 vpmaddubsw +
//                   16 vpmaddwd + 16 vpaddd  (even/odd split, 2 ymm halves)
//  * widened-avx2 : 12 vpmovzx + 16 vpmaddwd + 16 vpaddd
//  * scalar       : modeled flat at 1 MAC/cycle
Int8TierAnalysis AnalyzeInt8Tier(X86Int8Tier tier);

// Cycle count of a sequence under the three-port greedy scheduler: each
// cycle each port issues at most one instruction, most-constrained
// (fewest-allowed-ports) instructions first, plus one drain cycle for the
// dependent reduction tail.
double ScheduleCyclesX86(const std::vector<const InstrSpec*>& sequence);

// Predicted cycles for an m x n x k int8 convolution GEMM (m = output
// pixels, n = output channels, k = patch depth) on one core: the MAC
// throughput above plus the per-tier data-movement overheads -- the
// widened tiers pay the scalar biased-panel interleave pass and a
// horizontal reduce per 2x4 register tile, the dot tiers only the raw
// row-staging memcpy. These overhead constants are calibrated to the
// microbenchmarks in bench_int8_dotprod.cc, not derived.
double PredictInt8LayerCycles(X86Int8Tier tier, std::int64_t m,
                              std::int64_t n, std::int64_t k);

// Convenience ratio: PredictInt8LayerCycles(baseline, ...) /
// PredictInt8LayerCycles(candidate, ...).
double PredictedInt8Speedup(X86Int8Tier baseline, X86Int8Tier candidate,
                            std::int64_t m, std::int64_t n, std::int64_t k);

const char* X86Int8TierName(X86Int8Tier tier);

}  // namespace lce::costmodel

#endif  // LCE_COSTMODEL_X86_INT8_H_
