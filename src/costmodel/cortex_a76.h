// Analytical Cortex-A76 instruction cost model reproducing the paper's
// Table 1: the Neon SIMD instruction sequences for float / 8-bit / binary
// multiply-accumulate and their theoretical sustained throughput.
//
// Throughputs are taken from the Arm Cortex-A76 Software Optimization Guide
// (the paper's source). The A76 dual-issues ASIMD operations across two
// pipes (V0/V1); CNT and UADALP are restricted to one pipe, which is exactly
// why the 24-instruction binary MAC sequence takes 13 cycles rather than 12.
#ifndef LCE_COSTMODEL_CORTEX_A76_H_
#define LCE_COSTMODEL_CORTEX_A76_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lce::costmodel {

// One Neon instruction class with its issue constraints.
struct InstrSpec {
  std::string name;
  double throughput;      // sustained instructions / cycle
  std::uint8_t port_mask; // bit 0: pipe V0, bit 1: pipe V1
};

// The A76 ASIMD instruction table entries used by the MAC sequences.
const InstrSpec& Fmla();    // float fused multiply-add, 4 fp32 lanes
const InstrSpec& Sdot();    // int8 dot product, 16 int8 MACs
const InstrSpec& Eor();     // binary multiply (XOR), 128 binary MACs
const InstrSpec& Cnt();     // per-byte popcount
const InstrSpec& Addp();    // pairwise add (8-bit -> 8-bit reduction)
const InstrSpec& Uadalp();  // pairwise add-accumulate into wider lanes

enum class MacPrecision { kFloat32, kInt8, kBinary };

struct MacSequenceAnalysis {
  MacPrecision precision;
  std::vector<std::string> instruction_names;  // unique instruction classes
  int instructions = 0;  // total instructions in the modeled sequence
  int macs = 0;          // MACs computed by the sequence
  double cycles = 0.0;   // port-scheduled cycle count
  double macs_per_cycle = 0.0;
};

// Builds and schedules the canonical MAC sequence for a precision:
//  * float : n fmla instructions (4 MACs each, throughput-limited)
//  * int8  : n sdot instructions (16 MACs each)
//  * binary: per 8 vector registers (1024 MACs): 8 eor + 8 cnt + 4 addp +
//            4 uadalp = 24 instructions (the paper's sequence)
MacSequenceAnalysis AnalyzeMacSequence(MacPrecision precision);

// Cycle count of an arbitrary instruction sequence under the two-pipe
// greedy scheduler (plus one drain cycle for the dependent tail).
double ScheduleCycles(const std::vector<const InstrSpec*>& sequence);

// Theoretical compute-bound speedups implied by the table (paper: 9.75x
// binary vs float, 2.43x binary vs int8).
double TheoreticalSpeedup(MacPrecision slow, MacPrecision fast);

// Memory-traffic ratio between precisions (32x binary vs float, 8x vs int8).
double MemoryTrafficRatio(MacPrecision slow, MacPrecision fast);

}  // namespace lce::costmodel

#endif  // LCE_COSTMODEL_CORTEX_A76_H_
