// Minimal JSON helpers shared by the telemetry emitters (tracer, metrics,
// run reports): string escaping for output, and a strict syntax checker used
// by `trace_model --check` and the telemetry tests to validate emitted
// documents without an external JSON library.
#ifndef LCE_TELEMETRY_JSON_H_
#define LCE_TELEMETRY_JSON_H_

#include <string>
#include <string_view>

namespace lce::telemetry {

// Escapes `s` for inclusion inside a double-quoted JSON string (quotes,
// backslashes, control characters).
std::string JsonEscape(std::string_view s);

// Strict recursive-descent syntax check of a complete JSON document
// (RFC 8259 values: objects, arrays, strings, numbers, true/false/null).
// Returns true when `text` is exactly one valid JSON value; on failure
// `error` (if non-null) describes the first problem and its byte offset.
bool ValidateJsonSyntax(std::string_view text, std::string* error = nullptr);

}  // namespace lce::telemetry

#endif  // LCE_TELEMETRY_JSON_H_
