#include "telemetry/json.h"

#include <cctype>
#include <cstdio>

namespace lce::telemetry {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

// Recursive-descent JSON checker. Tracks position for error reporting and
// bounds recursion depth so hostile inputs cannot overflow the stack.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool Run(std::string* error) {
    SkipWs();
    if (!Value(0)) {
      Fail("invalid JSON value");
    } else {
      SkipWs();
      if (pos_ != text_.size()) Fail("trailing characters after document");
    }
    if (!ok_ && error != nullptr) {
      *error = error_ + " at byte " + std::to_string(error_pos_);
    }
    return ok_;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void Fail(const char* msg) {
    if (ok_) {
      ok_ = false;
      error_ = msg;
      error_pos_ = pos_;
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  bool Consume(char c) {
    if (AtEnd() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  void SkipWs() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                        Peek() == '\r')) {
      ++pos_;
    }
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool String() {
    if (!Consume('"')) return false;
    while (!AtEnd()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        if (AtEnd()) return false;
        const char e = text_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (AtEnd() || !std::isxdigit(static_cast<unsigned char>(
                               text_[pos_]))) {
              return false;
            }
            ++pos_;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool Digits() {
    if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      return false;
    }
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    return true;
  }

  bool Number() {
    Consume('-');
    if (Consume('0')) {
      // No further integer digits allowed after a leading zero.
    } else if (!Digits()) {
      return false;
    }
    if (Consume('.') && !Digits()) return false;
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (!Digits()) return false;
    }
    return true;
  }

  bool Value(int depth) {
    if (depth > kMaxDepth || AtEnd()) return false;
    const char c = Peek();
    if (c == '{') return Object(depth);
    if (c == '[') return Array(depth);
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return Number();
    }
    return false;
  }

  bool Object(int depth) {
    if (!Consume('{')) return false;
    SkipWs();
    if (Consume('}')) return true;
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Consume(':')) return false;
      SkipWs();
      if (!Value(depth + 1)) return false;
      SkipWs();
      if (Consume('}')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool Array(int depth) {
    if (!Consume('[')) return false;
    SkipWs();
    if (Consume(']')) return true;
    for (;;) {
      SkipWs();
      if (!Value(depth + 1)) return false;
      SkipWs();
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
  std::size_t error_pos_ = 0;
};

}  // namespace

bool ValidateJsonSyntax(std::string_view text, std::string* error) {
  return JsonChecker(text).Run(error);
}

}  // namespace lce::telemetry
