#include "telemetry/run_report.h"

#include <cstdio>

#include "profiling/bench_utils.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"

namespace lce::telemetry {
namespace {

std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

void RunReport::AddMeta(const std::string& key, const std::string& value) {
  meta_strings_.emplace_back(key, value);
}

void RunReport::AddMetaInt(const std::string& key, std::int64_t value) {
  meta_ints_.emplace_back(key, value);
}

void RunReport::AddLatencySeconds(double seconds) {
  latencies_s_.push_back(seconds);
}

void RunReport::AddResult(const std::string& key, double value) {
  results_.emplace_back(key, value);
}

std::string RunReport::ToJson() const {
  std::string out = "{\n  \"name\": \"" + JsonEscape(name_) + "\",\n";

  out += "  \"metadata\": {";
  bool first = true;
  for (const auto& [k, v] : meta_strings_) {
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(k) + "\": \"" + JsonEscape(v) + "\"";
    first = false;
  }
  for (const auto& [k, v] : meta_ints_) {
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(k) + "\": " + std::to_string(v);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"latency\": ";
  if (latencies_s_.empty()) {
    out += "null,\n";
  } else {
    out += "{\n";
    out += "    \"samples\": " + std::to_string(latencies_s_.size()) + ",\n";
    out += "    \"median_s\": " +
           FormatDouble(profiling::Median(latencies_s_)) + ",\n";
    out += "    \"p10_s\": " +
           FormatDouble(profiling::Percentile(latencies_s_, 0.10)) + ",\n";
    out += "    \"p90_s\": " +
           FormatDouble(profiling::Percentile(latencies_s_, 0.90)) + ",\n";
    out += "    \"mean_s\": " + FormatDouble(profiling::Mean(latencies_s_)) +
           "\n  },\n";
  }

  out += "  \"results\": {";
  first = true;
  for (const auto& [k, v] : results_) {
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(k) + "\": " + FormatDouble(v);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"metrics\": ";
  if (include_metrics_) {
    // Indent the registry's two-space JSON under this key.
    std::string metrics = MetricsRegistry::Global().ToJson();
    if (!metrics.empty() && metrics.back() == '\n') metrics.pop_back();
    std::string indented;
    indented.reserve(metrics.size() + 64);
    for (char c : metrics) {
      indented += c;
      if (c == '\n') indented += "  ";
    }
    out += indented;
  } else {
    out += "null";
  }
  out += "\n}\n";
  return out;
}

Status RunReport::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  const std::string json = ToJson();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::DataLoss("short write to '" + path + "'");
  }
  return Status::Ok();
}

}  // namespace lce::telemetry
