// The single monotonic clock behind every LCE timestamp: tracer spans,
// interpreter per-op profiles, BConv2d stage times and benchmark timing all
// read this clock, so latencies from different layers are directly
// comparable (previously three copies of NowSeconds() existed in
// interpreter.cc, bconv2d.cc and bench_utils.h).
#ifndef LCE_TELEMETRY_CLOCK_H_
#define LCE_TELEMETRY_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace lce::telemetry {

// Monotonic nanoseconds since an arbitrary epoch (steady_clock's). The
// native unit of trace events; never affected by wall-clock adjustments.
inline std::uint64_t NowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Same clock in seconds, for code that aggregates double-valued latencies.
// steady_clock epochs fit well inside double's 53-bit mantissa at
// nanosecond granularity, so differences of these values are exact to well
// under a nanosecond.
inline double NowSeconds() { return static_cast<double>(NowNanos()) * 1e-9; }

}  // namespace lce::telemetry

#endif  // LCE_TELEMETRY_CLOCK_H_
