// Machine-readable run reports: one JSON document per benchmark/tool run
// with workload metadata, a latency summary (median/p10/p90 over raw
// samples) and a snapshot of the metrics registry. Reports from successive
// commits are diffable, which turns the bench/ trajectory into data instead
// of console text. Used by `trace_model --json=` and the bench harnesses'
// `--json=<path>` flag.
#ifndef LCE_TELEMETRY_RUN_REPORT_H_
#define LCE_TELEMETRY_RUN_REPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/status.h"

namespace lce::telemetry {

class RunReport {
 public:
  explicit RunReport(std::string name) : name_(std::move(name)) {}

  // Workload metadata (model name, threads, kernel profile, input size...).
  void AddMeta(const std::string& key, const std::string& value);
  void AddMetaInt(const std::string& key, std::int64_t value);

  // One end-to-end latency sample in seconds; the report summarizes all
  // samples as median / p10 / p90 / mean.
  void AddLatencySeconds(double seconds);

  // Free-form named scalar results (per-model latencies, speedups...).
  void AddResult(const std::string& key, double value);

  // Include a metrics-registry snapshot in the report (default on).
  void set_include_metrics(bool include) { include_metrics_ = include; }

  std::string ToJson() const;
  Status WriteJson(const std::string& path) const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> meta_strings_;
  std::vector<std::pair<std::string, std::int64_t>> meta_ints_;
  std::vector<std::pair<std::string, double>> results_;
  std::vector<double> latencies_s_;
  bool include_metrics_ = true;
};

}  // namespace lce::telemetry

#endif  // LCE_TELEMETRY_RUN_REPORT_H_
