// Low-overhead scoped-span tracer with Chrome trace-event JSON export.
//
// Each thread records completed spans into its own fixed-capacity buffer
// (one release-store per span, no locks, no allocation on the hot path), so
// converter passes, interpreter Prepare/Invoke, BGEMM stages and ParallelFor
// shards can all be traced -- including from pool worker threads, which show
// up as distinct track (tid) rows in chrome://tracing / Perfetto.
//
// Enabling:
//   * at runtime: Tracer::Global().Enable(), or InterpreterOptions /
//     ConvertOptions .enable_tracing = true;
//   * from the environment: LCE_TRACE=<path> enables tracing at startup and
//     writes the Chrome trace JSON to <path> at process exit (so any
//     existing binary can be traced without code changes);
//   * at compile time the whole mechanism is removed with
//     -DLCE_TELEMETRY_DISABLED (cmake -DLCE_TELEMETRY=OFF): the macros
//     expand to nothing and `TracingActive()` folds to `false`.
//
// When compiled in but disabled, an instrumented scope costs one relaxed
// atomic load. Buffer overflow never corrupts output: excess spans are
// dropped and counted in the `tracer.dropped_spans` metric.
//
// Usage:
//   void Pack(...) {
//     LCE_TRACE_SCOPE("bgemm/pack");   // span from here to end of scope
//     ...
//   }
#ifndef LCE_TELEMETRY_TRACER_H_
#define LCE_TELEMETRY_TRACER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/status.h"
#include "telemetry/clock.h"

namespace lce::telemetry {

#ifdef LCE_TELEMETRY_DISABLED
inline constexpr bool kTracingCompiledIn = false;
#else
inline constexpr bool kTracingCompiledIn = true;
#endif

// Span names longer than this are truncated when recorded (names are copied
// into fixed-size slots so the buffers stay allocation-free and POD).
inline constexpr std::size_t kTraceNameCapacity = 64;
inline constexpr std::size_t kTraceArgNameCapacity = 24;

struct TraceEvent {
  char name[kTraceNameCapacity];
  const char* category;  // must point at static storage (string literal)
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  char arg_name[kTraceArgNameCapacity];  // empty string = no argument
  std::int64_t arg_value = 0;
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacityPerThread = 1 << 16;

  // The process-wide tracer. Reads LCE_TRACE on first use (see above).
  static Tracer& Global();

  // Starts recording. Threads get `capacity_per_thread` event slots each on
  // their first recorded span. Idempotent; capacity applies to threads that
  // register after the call.
  void Enable(std::size_t capacity_per_thread = kDefaultCapacityPerThread);
  // Stops recording; already-recorded events remain exportable.
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Records a completed span [start_ns, end_ns) (clock.h timestamps) on the
  // calling thread. No-op when disabled. `category` must have static
  // storage duration. Use this directly when the timestamps also feed
  // another consumer (per-op profiles, stage-time structs), so both views
  // share one clock read.
  void RecordComplete(const char* name, const char* category,
                      std::uint64_t start_ns, std::uint64_t end_ns) {
    RecordCompleteWithArg(name, category, start_ns, end_ns, nullptr, 0);
  }
  void RecordCompleteWithArg(const char* name, const char* category,
                             std::uint64_t start_ns, std::uint64_t end_ns,
                             const char* arg_name, std::int64_t arg_value);

  // Events recorded so far, tagged with the stable per-thread track id they
  // were recorded on. Safe to call while other threads keep recording (an
  // in-flight span is either fully visible or not yet visible).
  struct CollectedEvent {
    int tid = 0;
    TraceEvent event;
  };
  std::vector<CollectedEvent> Collect() const;

  std::size_t recorded_events() const;
  // Spans rejected because a thread's buffer was full (also mirrored in the
  // `tracer.dropped_spans` metric).
  std::uint64_t dropped_events() const;

  // Discards all recorded events and thread buffers. Must not race with
  // threads actively recording (quiesce first); intended for tests and for
  // capture tools that emit one trace per run.
  void Clear();

  // Chrome trace-event JSON ("X" complete events, microsecond timestamps
  // relative to the first Enable), loadable in chrome://tracing and
  // https://ui.perfetto.dev.
  std::string ToChromeTraceJson() const;
  Status WriteChromeTrace(const std::string& path) const;

 private:
  struct ThreadBuffer {
    ThreadBuffer(int tid, std::size_t capacity) : tid(tid), events(capacity) {}
    const int tid;
    std::vector<TraceEvent> events;
    // Number of fully-written events; stored with release so a reader that
    // acquires it sees complete event payloads.
    std::atomic<std::size_t> count{0};
    std::atomic<std::uint64_t> dropped{0};
  };

  Tracer();

  ThreadBuffer* RegisterThisThread();

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::atomic<bool> enabled_{false};
  // Bumped by Clear() so threads re-register instead of touching freed
  // buffers cached in their thread-local slot.
  std::atomic<std::uint64_t> generation_{1};
  std::size_t capacity_per_thread_ = kDefaultCapacityPerThread;
  std::uint64_t epoch_ns_ = 0;  // ts origin for export; set at first Enable
  std::string env_trace_path_;  // non-empty when LCE_TRACE is set

  friend void DumpTraceAtExit();
};

// True when tracing is compiled in and currently enabled. Call sites doing
// manual RecordComplete bookkeeping should branch on this so the disabled
// path stays free of clock reads.
inline bool TracingActive() {
  if constexpr (!kTracingCompiledIn) {
    return false;
  } else {
    return Tracer::Global().enabled();
  }
}

// RAII span: records [construction, destruction) on the calling thread.
// When tracing is disabled at construction time, destruction is free.
class TraceScope {
 public:
  explicit TraceScope(const char* name, const char* category = "lce") {
    if (TracingActive()) {
      name_ = name;
      category_ = category;
      start_ns_ = NowNanos();
    }
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  // Attaches one numeric argument emitted with the span (e.g. a converter
  // pass's rewrite count). `arg_name` must have static storage duration.
  void AddArg(const char* arg_name, std::int64_t value) {
    arg_name_ = arg_name;
    arg_value_ = value;
  }

  ~TraceScope() {
    if (name_ != nullptr) {
      Tracer::Global().RecordCompleteWithArg(name_, category_, start_ns_,
                                             NowNanos(), arg_name_,
                                             arg_value_);
    }
  }

 private:
  const char* name_ = nullptr;
  const char* category_ = nullptr;
  const char* arg_name_ = nullptr;
  std::int64_t arg_value_ = 0;
  std::uint64_t start_ns_ = 0;
};

#define LCE_TRACE_CONCAT_INNER(a, b) a##b
#define LCE_TRACE_CONCAT(a, b) LCE_TRACE_CONCAT_INNER(a, b)

#ifdef LCE_TELEMETRY_DISABLED
#define LCE_TRACE_SCOPE(name) \
  do {                        \
  } while (0)
#define LCE_TRACE_SCOPE_CAT(name, category) \
  do {                                      \
  } while (0)
#else
// Span covering the rest of the enclosing scope. `name` may be any
// expression convertible to const char* that stays valid until scope exit
// (string literals and node-name c_str()s both qualify).
#define LCE_TRACE_SCOPE(name)                 \
  ::lce::telemetry::TraceScope LCE_TRACE_CONCAT(lce_trace_scope_, \
                                                __LINE__)((name))
#define LCE_TRACE_SCOPE_CAT(name, category)   \
  ::lce::telemetry::TraceScope LCE_TRACE_CONCAT(lce_trace_scope_, \
                                                __LINE__)((name), (category))
#endif

}  // namespace lce::telemetry

#endif  // LCE_TELEMETRY_TRACER_H_
