#include "telemetry/metrics.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "telemetry/json.h"

namespace lce::telemetry {
namespace {

void DumpMetricsAtExit() {
  const char* path = std::getenv("LCE_METRICS");
  if (path == nullptr || *path == '\0') return;
  const char* format = std::getenv("LCE_METRICS_FORMAT");
  const bool prom = format != nullptr && std::strcmp(format, "prom") == 0;
  const Status s = prom
                       ? MetricsRegistry::Global().WritePrometheusText(path)
                       : MetricsRegistry::Global().WriteJson(path);
  if (!s.ok()) {
    std::fprintf(stderr, "[lce] LCE_METRICS dump failed: %s\n",
                 s.message().c_str());
  } else {
    std::fprintf(stderr, "[lce] wrote metrics (%s) to %s\n",
                 prom ? "prom" : "json", path);
  }
}

// Shortest round-trippable-enough representation that is always valid JSON
// and valid Prometheus sample syntax (never inf/nan: callers only pass
// finite values derived from int64 aggregates).
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

Status WriteStringToFile(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (written != body.size()) {
    return Status::DataLoss("short write to '" + path + "'");
  }
  return Status::Ok();
}

// Prometheus metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*; the registry
// uses dotted names, so map every other character to '_' and prefix "lce_"
// (which also guarantees a legal first character).
std::string PrometheusName(const std::string& name) {
  std::string out = "lce_";
  out.reserve(name.size() + 4);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Histogram bucket layout.
// ---------------------------------------------------------------------------

int Histogram::BucketIndex(std::int64_t value) {
  if (value < 0) value = 0;
  if (value < kSubBuckets) return static_cast<int>(value);
  // Octave o = floor(log2(value)) >= kSubBucketBits; the top kSubBucketBits
  // bits below the leading one select the linear sub-bucket.
  const int o = 63 - __builtin_clzll(static_cast<unsigned long long>(value));
  const int sub = static_cast<int>((value >> (o - kSubBucketBits)) - kSubBuckets);
  return kSubBuckets + (o - kSubBucketBits) * kSubBuckets + sub;
}

std::int64_t Histogram::BucketLowerBound(int i) {
  if (i <= 0) return 0;
  if (i < kSubBuckets) return i;
  const int k = i - kSubBuckets;
  const int o = kSubBucketBits + k / kSubBuckets;
  const int sub = k % kSubBuckets;
  return (std::int64_t{1} << o) +
         static_cast<std::int64_t>(sub) * (std::int64_t{1} << (o - kSubBucketBits));
}

std::int64_t Histogram::BucketUpperBound(int i) {
  if (i >= kNumBuckets - 1) return std::numeric_limits<std::int64_t>::max();
  return BucketLowerBound(i + 1);
}

HistogramSnapshot Histogram::TakeSnapshot() const {
  HistogramSnapshot snap;
  snap.name = name_;
  snap.buckets.resize(kNumBuckets);
  for (int i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  if (snap.count > 0) {
    snap.min = min_.load(std::memory_order_relaxed);
    snap.max = max_.load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::Reset() {
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<std::int64_t>::max(),
             std::memory_order_relaxed);
  max_.store(std::numeric_limits<std::int64_t>::min(),
             std::memory_order_relaxed);
}

double HistogramSnapshot::Quantile(double q) const {
  if (count <= 0) return 0.0;
  if (q <= 0.0) return static_cast<double>(min);
  if (q >= 1.0) return static_cast<double>(max);
  const double rank = q * static_cast<double>(count - 1);
  std::int64_t cum = 0;
  double value = static_cast<double>(max);
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::int64_t n = static_cast<std::int64_t>(buckets[i]);
    if (n == 0) continue;
    if (rank <= static_cast<double>(cum + n - 1)) {
      // The n observations in this bucket occupy ranks [cum, cum+n-1] and
      // integer values [lo, hi-1]; interpolate the rank linearly across
      // that span (midpoint for a lone observation).
      const double lo =
          static_cast<double>(Histogram::BucketLowerBound(static_cast<int>(i)));
      const double hi = static_cast<double>(
                            Histogram::BucketUpperBound(static_cast<int>(i))) -
                        1.0;
      const double within =
          n > 1 ? (rank - static_cast<double>(cum)) / static_cast<double>(n - 1)
                : 0.5;
      value = lo + within * (hi - lo);
      break;
    }
    cum += n;
  }
  // Clamp to the observed extremes: makes q=0, q=1 and the single-element
  // case exact instead of bucket-approximate.
  value = std::max(value, static_cast<double>(min));
  value = std::min(value, static_cast<double>(max));
  return value;
}

std::string HistogramSnapshot::ToJson() const {
  std::string out = "{";
  out += "\"count\": " + std::to_string(count);
  out += ", \"sum\": " + std::to_string(sum);
  out += ", \"min\": " + std::to_string(min);
  out += ", \"max\": " + std::to_string(max);
  out += ", \"p50\": " + FormatDouble(p50());
  out += ", \"p90\": " + FormatDouble(p90());
  out += ", \"p99\": " + FormatDouble(p99());
  out += ", \"buckets\": [";
  std::int64_t cum = 0;
  bool first = true;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    cum += static_cast<std::int64_t>(buckets[i]);
    if (!first) out += ", ";
    first = false;
    out += "{\"le\": " +
           std::to_string(Histogram::BucketUpperBound(static_cast<int>(i))) +
           ", \"count\": " + std::to_string(cum) + "}";
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

MetricsRegistry::MetricsRegistry() {
  if (const char* path = std::getenv("LCE_METRICS");
      path != nullptr && *path != '\0') {
    std::atexit(&DumpMetricsAtExit);
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Metric* MetricsRegistry::GetOrCreate(const std::string& name,
                                     MetricKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    it = metrics_.emplace(name, std::make_unique<Metric>(name, kind)).first;
  }
  return it->second.get();
}

::lce::telemetry::Histogram* MetricsRegistry::Histogram(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::make_unique<::lce::telemetry::Histogram>(name))
             .first;
  }
  return it->second.get();
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> out;
  out.reserve(metrics_.size());
  for (const auto& [name, metric] : metrics_) {
    out.push_back({name, metric->kind(), metric->value()});
  }
  return out;  // map iteration order is already name-sorted
}

std::vector<HistogramSnapshot> MetricsRegistry::SnapshotHistograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<HistogramSnapshot> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.push_back(histogram->TakeSnapshot());
  }
  return out;  // map iteration order is already name-sorted
}

std::string MetricsRegistry::ToJson() const {
  const auto samples = Snapshot();
  const auto histograms = SnapshotHistograms();
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& s : samples) {
    if (s.kind != MetricKind::kCounter) continue;
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(s.name) + "\": " + std::to_string(s.value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& s : samples) {
    if (s.kind != MetricKind::kGauge) continue;
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(s.name) + "\": " + std::to_string(s.value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& h : histograms) {
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(h.name) + "\": " + h.ToJson();
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

Status MetricsRegistry::WriteJson(const std::string& path) const {
  return WriteStringToFile(path, ToJson());
}

std::string MetricsRegistry::ToPrometheusText() const {
  const auto samples = Snapshot();
  const auto histograms = SnapshotHistograms();
  std::string out;
  for (const auto& s : samples) {
    const std::string name = PrometheusName(s.name);
    out += "# TYPE " + name +
           (s.kind == MetricKind::kCounter ? " counter\n" : " gauge\n");
    out += name + " " + std::to_string(s.value) + "\n";
  }
  for (const auto& h : histograms) {
    const std::string name = PrometheusName(h.name);
    out += "# TYPE " + name + " histogram\n";
    std::int64_t cum = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;
      cum += static_cast<std::int64_t>(h.buckets[i]);
      out += name + "_bucket{le=\"" +
             std::to_string(
                 Histogram::BucketUpperBound(static_cast<int>(i))) +
             "\"} " + std::to_string(cum) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += name + "_sum " + std::to_string(h.sum) + "\n";
    out += name + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

Status MetricsRegistry::WritePrometheusText(const std::string& path) const {
  return WriteStringToFile(path, ToPrometheusText());
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, metric] : metrics_) metric->Set(0);
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

// ---------------------------------------------------------------------------
// Exposition format validation.
// ---------------------------------------------------------------------------

namespace {

bool IsValidMetricNameChar(char c, bool first) {
  const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                     c == '_' || c == ':';
  if (first) return alpha;
  return alpha || (c >= '0' && c <= '9');
}

// name[{label="value",...}]
bool ParseSampleName(std::string_view line, std::size_t* pos) {
  std::size_t i = 0;
  if (i >= line.size() || !IsValidMetricNameChar(line[i], /*first=*/true)) {
    return false;
  }
  ++i;
  while (i < line.size() && IsValidMetricNameChar(line[i], /*first=*/false)) {
    ++i;
  }
  if (i < line.size() && line[i] == '{') {
    ++i;
    while (i < line.size() && line[i] != '}') {
      // label name
      if (!IsValidMetricNameChar(line[i], /*first=*/true)) return false;
      while (i < line.size() &&
             IsValidMetricNameChar(line[i], /*first=*/false)) {
        ++i;
      }
      if (i >= line.size() || line[i] != '=') return false;
      ++i;
      if (i >= line.size() || line[i] != '"') return false;
      ++i;
      while (i < line.size() && line[i] != '"') {
        if (line[i] == '\\') ++i;  // escaped char consumes two bytes
        ++i;
      }
      if (i >= line.size()) return false;  // unterminated label value
      ++i;                                 // closing quote
      if (i < line.size() && line[i] == ',') ++i;
    }
    if (i >= line.size()) return false;  // unterminated label set
    ++i;                                 // closing brace
  }
  *pos = i;
  return true;
}

bool ParseFloatValue(std::string_view text) {
  if (text.empty()) return false;
  if (text == "+Inf" || text == "-Inf" || text == "NaN") return true;
  std::string buf(text);
  char* end = nullptr;
  std::strtod(buf.c_str(), &end);
  return end != nullptr && *end == '\0' && end != buf.c_str();
}

}  // namespace

bool ValidatePrometheusText(std::string_view text, std::string* error) {
  std::size_t line_no = 0;
  std::size_t start = 0;
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + why;
    }
    return false;
  };
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line.rfind("# TYPE ", 0) != 0 && line.rfind("# HELP ", 0) != 0) {
        return fail("comment is neither # TYPE nor # HELP");
      }
      continue;
    }
    std::size_t pos = 0;
    if (!ParseSampleName(line, &pos)) {
      return fail("invalid metric name or label set");
    }
    if (pos >= line.size() || line[pos] != ' ') {
      return fail("missing space before sample value");
    }
    ++pos;
    // Optional trailing timestamp: take the first token as the value.
    std::string_view rest = line.substr(pos);
    const std::size_t space = rest.find(' ');
    const std::string_view value_tok =
        space == std::string_view::npos ? rest : rest.substr(0, space);
    if (!ParseFloatValue(value_tok)) {
      return fail("sample value is not a number");
    }
    if (space != std::string_view::npos) {
      const std::string_view ts = rest.substr(space + 1);
      if (!ParseFloatValue(ts)) {
        return fail("trailing timestamp is not a number");
      }
    }
  }
  if (error != nullptr) error->clear();
  return true;
}

}  // namespace lce::telemetry
