#include "telemetry/metrics.h"

#include <cstdio>
#include <cstdlib>

#include "telemetry/json.h"

namespace lce::telemetry {
namespace {

void DumpMetricsAtExit() {
  const char* path = std::getenv("LCE_METRICS");
  if (path == nullptr || *path == '\0') return;
  const Status s = MetricsRegistry::Global().WriteJson(path);
  if (!s.ok()) {
    std::fprintf(stderr, "[lce] LCE_METRICS dump failed: %s\n",
                 s.message().c_str());
  } else {
    std::fprintf(stderr, "[lce] wrote metrics to %s\n", path);
  }
}

}  // namespace

MetricsRegistry::MetricsRegistry() {
  if (const char* path = std::getenv("LCE_METRICS");
      path != nullptr && *path != '\0') {
    std::atexit(&DumpMetricsAtExit);
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Metric* MetricsRegistry::GetOrCreate(const std::string& name,
                                     MetricKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    it = metrics_.emplace(name, std::make_unique<Metric>(name, kind)).first;
  }
  return it->second.get();
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> out;
  out.reserve(metrics_.size());
  for (const auto& [name, metric] : metrics_) {
    out.push_back({name, metric->kind(), metric->value()});
  }
  return out;  // map iteration order is already name-sorted
}

std::string MetricsRegistry::ToJson() const {
  const auto samples = Snapshot();
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& s : samples) {
    if (s.kind != MetricKind::kCounter) continue;
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(s.name) + "\": " + std::to_string(s.value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& s : samples) {
    if (s.kind != MetricKind::kGauge) continue;
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(s.name) + "\": " + std::to_string(s.value);
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

Status MetricsRegistry::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  const std::string json = ToJson();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::DataLoss("short write to '" + path + "'");
  }
  return Status::Ok();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, metric] : metrics_) metric->Set(0);
}

}  // namespace lce::telemetry
