// Process-wide registry of named counters and gauges -- the numeric side of
// the telemetry subsystem (the tracer is the timeline side).
//
// Counters accumulate monotonically (binary MACs executed, ParallelFor
// shards, validator rejects, dropped trace events); gauges record a level,
// usually a high-water mark (arena bytes, packed weight bytes, im2col
// scratch bytes). All updates are relaxed atomics on stable Metric objects,
// so hot paths pay one atomic RMW after a one-time name lookup:
//
//   static telemetry::Metric* macs =
//       telemetry::MetricsRegistry::Global().Counter("bgemm.binary_macs");
//   macs->Add(m * n * k);
//
// The registry dumps as JSON (metrics.json via LCE_METRICS=<path>, the
// `trace_model --metrics=` flag, or MetricsRegistry::ToJson()).
#ifndef LCE_TELEMETRY_METRICS_H_
#define LCE_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/status.h"

namespace lce::telemetry {

enum class MetricKind : std::uint8_t { kCounter = 0, kGauge = 1 };

class Metric {
 public:
  Metric(std::string name, MetricKind kind)
      : name_(std::move(name)), kind_(kind) {}

  Metric(const Metric&) = delete;
  Metric& operator=(const Metric&) = delete;

  const std::string& name() const { return name_; }
  MetricKind kind() const { return kind_; }

  void Add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  // Raises the gauge to `v` if larger (high-water-mark semantics).
  void SetMax(std::int64_t v) {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  const std::string name_;
  const MetricKind kind_;
  std::atomic<std::int64_t> value_{0};
};

class MetricsRegistry {
 public:
  // The process-wide registry. If the LCE_METRICS environment variable is
  // set, a JSON snapshot is written to that path at process exit.
  static MetricsRegistry& Global();

  // Returns the metric with this name, creating it on first use. Pointers
  // are stable for the registry's lifetime, so call sites may cache them.
  // The kind is fixed by the first caller.
  Metric* Counter(const std::string& name) {
    return GetOrCreate(name, MetricKind::kCounter);
  }
  Metric* Gauge(const std::string& name) {
    return GetOrCreate(name, MetricKind::kGauge);
  }

  struct Sample {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    std::int64_t value = 0;
  };
  // All metrics, sorted by name.
  std::vector<Sample> Snapshot() const;

  // {"counters": {...}, "gauges": {...}} with keys sorted.
  std::string ToJson() const;
  Status WriteJson(const std::string& path) const;

  // Zeroes every metric's value (objects and cached pointers stay valid).
  void Reset();

 private:
  MetricsRegistry();

  Metric* GetOrCreate(const std::string& name, MetricKind kind);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Metric>> metrics_;
};

}  // namespace lce::telemetry

#endif  // LCE_TELEMETRY_METRICS_H_
