// Process-wide registry of named counters, gauges and histograms -- the
// numeric side of the telemetry subsystem (the tracer is the timeline side).
//
// Counters accumulate monotonically (binary MACs executed, ParallelFor
// shards, validator rejects, dropped trace events); gauges record a level,
// usually a high-water mark (arena bytes, packed weight bytes, im2col
// scratch bytes); histograms record latency-shaped distributions
// (serving queue wait / execute / end-to-end, per-node invoke latency) in
// log-spaced int64 nanosecond buckets. All updates are relaxed atomics on
// stable objects, so hot paths pay one or two atomic RMWs after a one-time
// name lookup:
//
//   static telemetry::Metric* macs =
//       telemetry::MetricsRegistry::Global().Counter("bgemm.binary_macs");
//   macs->Add(m * n * k);
//
//   static telemetry::Histogram* e2e =
//       telemetry::MetricsRegistry::Global().Histogram("serving.e2e_ns");
//   e2e->Record(latency_ns);
//
// The registry dumps as JSON (metrics.json via LCE_METRICS=<path>, the
// `trace_model --metrics=` flag, or MetricsRegistry::ToJson()) or as
// Prometheus text exposition (ToPrometheusText(), or LCE_METRICS=<path>
// with LCE_METRICS_FORMAT=prom).
#ifndef LCE_TELEMETRY_METRICS_H_
#define LCE_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"

namespace lce::telemetry {

enum class MetricKind : std::uint8_t { kCounter = 0, kGauge = 1 };

class Metric {
 public:
  Metric(std::string name, MetricKind kind)
      : name_(std::move(name)), kind_(kind) {}

  Metric(const Metric&) = delete;
  Metric& operator=(const Metric&) = delete;

  const std::string& name() const { return name_; }
  MetricKind kind() const { return kind_; }

  void Add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  // Raises the gauge to `v` if larger (high-water-mark semantics).
  void SetMax(std::int64_t v) {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  const std::string name_;
  const MetricKind kind_;
  std::atomic<std::int64_t> value_{0};
};

// One read-only view of a histogram's state: bucket counts plus the scalar
// aggregates, with interpolated quantiles. Produced by
// Histogram::TakeSnapshot(); safe to keep after the registry moves on.
struct HistogramSnapshot {
  std::string name;
  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;  // 0 when count == 0
  std::int64_t max = 0;

  // Per-bucket observation counts (size Histogram::kNumBuckets).
  std::vector<std::uint64_t> buckets;

  // Interpolated quantile, q in [0, 1]. Walks the cumulative bucket counts
  // to the bucket containing rank q*(count-1), interpolates linearly within
  // it, and clamps to the observed [min, max] so q=0 / q=1 are exact at the
  // extremes. Error is bounded by one bucket's width: <= 12.5% of the value
  // (see Histogram's bucket layout).
  double Quantile(double q) const;
  double p50() const { return Quantile(0.50); }
  double p90() const { return Quantile(0.90); }
  double p99() const { return Quantile(0.99); }

  // {"count":..,"sum":..,"min":..,"max":..,"p50":..,"p90":..,"p99":..,
  //  "buckets":[{"le":<upper-bound>,"count":<cumulative>},...]} with one
  // entry per non-empty bucket (cumulative, Prometheus-style).
  std::string ToJson() const;
};

// Lock-free log-bucketed int64 histogram, designed for nanosecond
// latencies. Record() is two relaxed fetch_adds plus two bounded CAS loops
// (min/max) -- no locks, no allocation, safe from any thread.
//
// Bucket layout (HdrHistogram-style): values 0..7 get exact unit buckets;
// every octave [2^o, 2^(o+1)) above that is split into 8 linear
// sub-buckets. Bucket width is therefore always <= 1/8 of the bucket's
// lower bound, so any value reconstructed from its bucket is within 12.5%
// relative error -- and so are the snapshot's interpolated quantiles. The
// layout covers the full positive int64 range (negative values clamp to 0)
// in 488 buckets = ~4 KiB of atomics per histogram.
class Histogram {
 public:
  static constexpr int kSubBucketBits = 3;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;  // 8 per octave
  // 8 exact unit buckets + octaves o = 3..62, 8 sub-buckets each.
  static constexpr int kNumBuckets = kSubBuckets + (62 - kSubBucketBits + 1) * kSubBuckets;

  explicit Histogram(std::string name) : name_(std::move(name)) {}

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  const std::string& name() const { return name_; }

  // Records one observation (negative values clamp to 0). Relaxed atomics
  // only; concurrent Record()s never lose counts.
  void Record(std::int64_t value) {
    const std::int64_t v = value < 0 ? 0 : value;
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::int64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  // Bucket index for a value (clamped to >= 0).
  static int BucketIndex(std::int64_t value);
  // Inclusive lower / exclusive upper bound of bucket i.
  static std::int64_t BucketLowerBound(int i);
  static std::int64_t BucketUpperBound(int i);

  // Consistent-enough view for concurrent use: each field is read with a
  // relaxed load, so a snapshot racing active Record()s may be off by the
  // in-flight observations but is never corrupt.
  HistogramSnapshot TakeSnapshot() const;

  // Zeroes all state (used by MetricsRegistry::Reset()).
  void Reset();

  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  const std::string name_;
  std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{std::numeric_limits<std::int64_t>::max()};
  std::atomic<std::int64_t> max_{std::numeric_limits<std::int64_t>::min()};
};

class MetricsRegistry {
 public:
  // The process-wide registry. If the LCE_METRICS environment variable is
  // set, a snapshot is written to that path at process exit -- JSON by
  // default, Prometheus text when LCE_METRICS_FORMAT=prom.
  static MetricsRegistry& Global();

  // Returns the metric with this name, creating it on first use. Pointers
  // are stable for the registry's lifetime, so call sites may cache them.
  // The kind is fixed by the first caller.
  Metric* Counter(const std::string& name) {
    return GetOrCreate(name, MetricKind::kCounter);
  }
  Metric* Gauge(const std::string& name) {
    return GetOrCreate(name, MetricKind::kGauge);
  }
  // The histogram with this name, creating it on first use; pointers are
  // stable. Histograms live in their own namespace (a name may not be both
  // a scalar metric and a histogram).
  ::lce::telemetry::Histogram* Histogram(const std::string& name);

  struct Sample {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    std::int64_t value = 0;
  };
  // All scalar metrics, sorted by name.
  std::vector<Sample> Snapshot() const;
  // All histograms, sorted by name.
  std::vector<HistogramSnapshot> SnapshotHistograms() const;

  // {"counters": {...}, "gauges": {...}, "histograms": {...}} with keys
  // sorted; histogram values follow HistogramSnapshot::ToJson().
  std::string ToJson() const;
  Status WriteJson(const std::string& path) const;

  // Prometheus text exposition (one `# TYPE` line plus samples per metric;
  // histograms emit cumulative `_bucket{le=...}` series with `_sum` and
  // `_count`). Names are sanitized to the Prometheus charset and prefixed
  // `lce_`. Scrape-ready; validated by ValidatePrometheusText.
  std::string ToPrometheusText() const;
  Status WritePrometheusText(const std::string& path) const;

  // Zeroes every metric's value (objects and cached pointers stay valid).
  void Reset();

 private:
  MetricsRegistry();

  Metric* GetOrCreate(const std::string& name, MetricKind kind);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Metric>> metrics_;
  std::map<std::string, std::unique_ptr<::lce::telemetry::Histogram>>
      histograms_;
};

// Line-format check for Prometheus text exposition: every line must be
// blank, a `# HELP`/`# TYPE` comment, or `name[{label="value",...}] number`
// with a valid metric name and a parseable float. Returns true on success;
// on failure `error` (if non-null) names the first offending line. Used by
// the telemetry tests and the CI exposition-format gate.
bool ValidatePrometheusText(std::string_view text, std::string* error = nullptr);

}  // namespace lce::telemetry

#endif  // LCE_TELEMETRY_METRICS_H_
