#include "telemetry/tracer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "telemetry/json.h"
#include "telemetry/metrics.h"

namespace lce::telemetry {
namespace {

// Thread-local handle into the tracer's buffer list. The generation check
// makes stale handles (from before a Clear()) re-register instead of
// touching freed memory.
struct ThreadSlot {
  std::uint64_t generation = 0;
  void* buffer = nullptr;
};
thread_local ThreadSlot t_slot;

}  // namespace

void DumpTraceAtExit() {
  Tracer& tracer = Tracer::Global();
  if (tracer.env_trace_path_.empty()) return;
  const Status s = tracer.WriteChromeTrace(tracer.env_trace_path_);
  if (!s.ok()) {
    std::fprintf(stderr, "[lce] LCE_TRACE dump failed: %s\n",
                 s.message().c_str());
  } else {
    std::fprintf(stderr, "[lce] wrote trace to %s (%zu events, %llu dropped)\n",
                 tracer.env_trace_path_.c_str(), tracer.recorded_events(),
                 static_cast<unsigned long long>(tracer.dropped_events()));
  }
}

Tracer::Tracer() {
  if (const char* path = std::getenv("LCE_TRACE");
      path != nullptr && *path != '\0') {
    env_trace_path_ = path;
    Enable();
    std::atexit(&DumpTraceAtExit);
  }
}

Tracer& Tracer::Global() {
  // Leaked intentionally: worker threads may record during static
  // destruction of other objects; the atexit dump runs before that.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Enable(std::size_t capacity_per_thread) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_per_thread_ = capacity_per_thread == 0 ? 1 : capacity_per_thread;
  if (epoch_ns_ == 0) epoch_ns_ = NowNanos();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

Tracer::ThreadBuffer* Tracer::RegisterThisThread() {
  std::lock_guard<std::mutex> lock(mu_);
  auto buf = std::make_unique<ThreadBuffer>(static_cast<int>(buffers_.size()),
                                            capacity_per_thread_);
  ThreadBuffer* raw = buf.get();
  buffers_.push_back(std::move(buf));
  t_slot.generation = generation_.load(std::memory_order_relaxed);
  t_slot.buffer = raw;
  return raw;
}

void Tracer::RecordCompleteWithArg(const char* name, const char* category,
                                   std::uint64_t start_ns,
                                   std::uint64_t end_ns, const char* arg_name,
                                   std::int64_t arg_value) {
  if (!enabled()) return;
  ThreadBuffer* buf =
      t_slot.generation == generation_.load(std::memory_order_relaxed)
          ? static_cast<ThreadBuffer*>(t_slot.buffer)
          : RegisterThisThread();
  const std::size_t i = buf->count.load(std::memory_order_relaxed);
  if (i >= buf->events.size()) {
    buf->dropped.fetch_add(1, std::memory_order_relaxed);
    static Metric* dropped_metric =
        MetricsRegistry::Global().Counter("tracer.dropped_spans");
    dropped_metric->Add(1);
    return;
  }
  TraceEvent& e = buf->events[i];
  std::strncpy(e.name, name, kTraceNameCapacity - 1);
  e.name[kTraceNameCapacity - 1] = '\0';
  e.category = category;
  e.start_ns = start_ns;
  e.duration_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  if (arg_name != nullptr) {
    std::strncpy(e.arg_name, arg_name, kTraceArgNameCapacity - 1);
    e.arg_name[kTraceArgNameCapacity - 1] = '\0';
    e.arg_value = arg_value;
  } else {
    e.arg_name[0] = '\0';
    e.arg_value = 0;
  }
  // Publish: a Collect() that acquires `count` sees the payload above.
  buf->count.store(i + 1, std::memory_order_release);
}

std::vector<Tracer::CollectedEvent> Tracer::Collect() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CollectedEvent> out;
  for (const auto& buf : buffers_) {
    const std::size_t n = buf->count.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back({buf->tid, buf->events[i]});
    }
  }
  return out;
}

std::size_t Tracer::recorded_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& buf : buffers_) {
    n += buf->count.load(std::memory_order_acquire);
  }
  return n;
}

std::uint64_t Tracer::dropped_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& buf : buffers_) {
    n += buf->dropped.load(std::memory_order_relaxed);
  }
  return n;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  generation_.fetch_add(1, std::memory_order_relaxed);
  buffers_.clear();
}

std::string Tracer::ToChromeTraceJson() const {
  const auto events = Collect();
  std::uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    epoch = epoch_ns_;
  }

  std::string out;
  out.reserve(events.size() * 128 + 256);
  out += "{\"traceEvents\":[\n";
  bool first = true;
  // One metadata record per track so Perfetto shows stable row names.
  int max_tid = -1;
  for (const auto& ce : events) max_tid = ce.tid > max_tid ? ce.tid : max_tid;
  for (int tid = 0; tid <= max_tid; ++tid) {
    out += first ? "" : ",\n";
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(tid) + ",\"args\":{\"name\":\"lce-thread-" +
           std::to_string(tid) + "\"}}";
    first = false;
  }
  char buf[64];
  for (const auto& ce : events) {
    const TraceEvent& e = ce.event;
    out += first ? "" : ",\n";
    first = false;
    out += "{\"name\":\"" + JsonEscape(e.name) + "\",\"cat\":\"" +
           JsonEscape(e.category != nullptr ? e.category : "lce") +
           "\",\"ph\":\"X\",\"ts\":";
    const std::uint64_t rel = e.start_ns >= epoch ? e.start_ns - epoch : 0;
    std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(rel) * 1e-3);
    out += buf;
    out += ",\"dur\":";
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(e.duration_ns) * 1e-3);
    out += buf;
    out += ",\"pid\":1,\"tid\":" + std::to_string(ce.tid);
    if (e.arg_name[0] != '\0') {
      out += ",\"args\":{\"" + JsonEscape(e.arg_name) +
             "\":" + std::to_string(e.arg_value) + "}";
    }
    out += "}";
  }
  // Both keys carry the same count: "dropped_events" is the historical
  // name; "tracer.dropped_spans" matches the registry metric so tools that
  // look at either the metrics dump or the trace metadata see one name.
  const std::string dropped = std::to_string(dropped_events());
  out += "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"producer\":\"lce\","
         "\"dropped_events\":" +
         dropped + ",\"tracer.dropped_spans\":" + dropped + "}}\n";
  return out;
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  const std::string json = ToChromeTraceJson();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::DataLoss("short write to '" + path + "'");
  }
  return Status::Ok();
}

}  // namespace lce::telemetry
