// Umbrella header: the public API surface of the LCE reproduction.
//
//   #include "lce.h"
//
// pulls in everything a downstream user needs for the train -> convert ->
// deploy workflow:
//
//   * building graphs            (lce::Graph, lce::ModelBuilder, models/zoo.h)
//   * converting to inference    (lce::Convert, lce::QuantizeModelInt8)
//   * serializing models         (lce::SaveModel / lce::LoadModel)
//   * running inference          (lce::Interpreter; lce::CompiledModel +
//                                 lce::ExecutionContext for concurrent
//                                 serving, see docs/SERVING.md)
//   * profiling and accounting   (lce::profiling::*, lce::ComputeModelStats)
//
// The lower-level kernel and GEMM headers (kernels/, gemm/) are public too
// but only needed when embedding individual operators without the graph
// runtime.
#ifndef LCE_LCE_H_
#define LCE_LCE_H_

#include "converter/convert.h"
#include "converter/ptq.h"
#include "converter/serializer.h"
#include "core/random.h"
#include "core/tensor.h"
#include "graph/compiled_model.h"
#include "graph/interpreter.h"
#include "graph/printer.h"
#include "models/builder.h"
#include "models/macs.h"
#include "models/zoo.h"
#include "profiling/bench_utils.h"
#include "profiling/model_profiler.h"

#endif  // LCE_LCE_H_
