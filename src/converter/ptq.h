// Post-training quantization: converts the full-precision convolutions of a
// float graph to int8, the "near-lossless 8-bit quantization" baseline the
// paper benchmarks binarization against (Figures 2/3, Table 2).
//
// Pipeline (standard TFLite-style PTQ):
//   1. Calibrate: run the float graph on calibration inputs, recording the
//      min/max range of every Conv2D input and output via the interpreter's
//      observer hook.
//   2. Rewrite each float Conv2D (not the emulated binarized ones) into
//        QuantizeInt8 -> Conv2DInt8 -> DequantizeInt8
//      with per-tensor affine activations, symmetric int8 weights, and the
//      float bias requantized to int32 at scale s_in * s_w.
//   3. Cancel adjacent Dequantize -> Quantize pairs so chained quantized
//      convolutions pass int8 activations directly.
#ifndef LCE_CONVERTER_PTQ_H_
#define LCE_CONVERTER_PTQ_H_

#include <vector>

#include "core/status.h"
#include "graph/ir.h"

namespace lce {

struct PtqOptions {
  int calibration_runs = 4;        // random calibration batches
  std::uint64_t calibration_seed = 1234;
  // Per-output-channel symmetric weight quantization (TFLite's default for
  // convolution weights); per-tensor when false.
  bool per_channel_weights = true;
};

struct PtqStats {
  int convs_quantized = 0;
  int quantize_pairs_cancelled = 0;
};

// Quantizes `g` in place. The graph must be float-only on the rewritten
// paths (run this *before* binarized-conv lowering, or on graphs without
// binarized convolutions). Returns an error if calibration fails.
Status QuantizeModelInt8(Graph& g, const PtqOptions& options = {},
                         PtqStats* stats = nullptr);

}  // namespace lce

#endif  // LCE_CONVERTER_PTQ_H_
