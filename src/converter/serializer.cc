#include "converter/serializer.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <map>

#include "core/macros.h"
#include "graph/validator.h"
#include "kernels/bconv2d.h"

namespace lce {
namespace {

constexpr char kMagic[4] = {'L', 'C', 'E', 'M'};
constexpr std::uint32_t kVersion = 1;

class Writer {
 public:
  void U8(std::uint8_t v) { buf_.push_back(v); }
  void U32(std::uint32_t v) { Raw(&v, sizeof(v)); }
  void I32(std::int32_t v) { Raw(&v, sizeof(v)); }
  void I64(std::int64_t v) { Raw(&v, sizeof(v)); }
  void F32(float v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U32(static_cast<std::uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  void Floats(const std::vector<float>& v) {
    U32(static_cast<std::uint32_t>(v.size()));
    Raw(v.data(), v.size() * sizeof(float));
  }
  void Raw(const void* p, std::size_t n) {
    if (n == 0) return;  // p may be null for empty payloads
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool U8(std::uint8_t* v) { return Raw(v, 1); }
  bool U32(std::uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool I32(std::int32_t* v) { return Raw(v, sizeof(*v)); }
  bool I64(std::int64_t* v) { return Raw(v, sizeof(*v)); }
  bool F32(float* v) { return Raw(v, sizeof(*v)); }
  bool Str(std::string* s) {
    std::uint32_t n;
    if (!U32(&n) || n > Remaining()) return false;
    if (n == 0) {
      s->clear();
      return true;
    }
    s->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }
  bool Floats(std::vector<float>* v) {
    std::uint32_t n;
    if (!U32(&n)) return false;
    if (static_cast<std::size_t>(n) * sizeof(float) > Remaining()) return false;
    v->resize(n);
    return Raw(v->data(), n * sizeof(float));
  }
  bool Raw(void* p, std::size_t n) {
    if (n > Remaining()) return false;
    // An empty read may come with a null destination (e.g. a zero-length
    // vector's data()); memcpy's arguments are declared nonnull.
    if (n != 0) {
      std::memcpy(p, data_ + pos_, n);
      pos_ += n;
    }
    return true;
  }
  std::size_t Remaining() const { return size_ - pos_; }
  std::size_t pos() const { return pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

void WriteAttrs(Writer& w, const OpAttrs& a) {
  // Conv geometry (batch/in dims are re-resolved at load from shapes, but we
  // store the full struct for simplicity and robustness).
  w.I32(a.conv.batch); w.I32(a.conv.in_h); w.I32(a.conv.in_w); w.I32(a.conv.in_c);
  w.I32(a.conv.filter_h); w.I32(a.conv.filter_w); w.I32(a.conv.out_c);
  w.I32(a.conv.stride_h); w.I32(a.conv.stride_w);
  w.U8(static_cast<std::uint8_t>(a.conv.padding));
  w.I32(a.pool.batch); w.I32(a.pool.in_h); w.I32(a.pool.in_w); w.I32(a.pool.channels);
  w.I32(a.pool.filter_h); w.I32(a.pool.filter_w);
  w.I32(a.pool.stride_h); w.I32(a.pool.stride_w);
  w.U8(static_cast<std::uint8_t>(a.pool.padding));
  w.U8(static_cast<std::uint8_t>(a.activation));
  w.U8(a.binarize_weights ? 1 : 0);
  w.Floats(a.bn_scale);
  w.Floats(a.bn_offset);
  w.Floats(a.multiplier);
  w.Floats(a.bias);
  w.U8(static_cast<std::uint8_t>(a.pre_activation));
  w.U8(static_cast<std::uint8_t>(a.bconv_output));
  w.I32(a.fc_in_features);
  w.I32(a.fc_out_features);
  w.I32(a.slice_begin);
  w.I32(a.slice_count);
  w.F32(a.input_quant.scale);
  w.I32(a.input_quant.zero_point);
  w.F32(a.weight_quant.scale);
  w.I32(a.weight_quant.zero_point);
  w.F32(a.output_quant.scale);
  w.I32(a.output_quant.zero_point);
  w.U32(static_cast<std::uint32_t>(a.bias_int32.size()));
  w.Raw(a.bias_int32.data(), a.bias_int32.size() * sizeof(std::int32_t));
  w.Floats(a.weight_scales);
  w.Floats(a.prelu_slope);
}

Shape MakeShape(const std::int64_t* dims, int rank) {
  Shape s;
  switch (rank) {
    case 0: return Shape{};
    case 1: return Shape{dims[0]};
    case 2: return Shape{dims[0], dims[1]};
    case 3: return Shape{dims[0], dims[1], dims[2]};
    case 4: return Shape{dims[0], dims[1], dims[2], dims[3]};
    case 5: return Shape{dims[0], dims[1], dims[2], dims[3], dims[4]};
    default:
      return Shape{dims[0], dims[1], dims[2], dims[3], dims[4], dims[5]};
  }
}

bool ReadAttrs(Reader& r, OpAttrs* a) {
  std::uint8_t pad, pool_pad, act, binw, pre_act, bout;
  bool ok = r.I32(&a->conv.batch) && r.I32(&a->conv.in_h) &&
            r.I32(&a->conv.in_w) && r.I32(&a->conv.in_c) &&
            r.I32(&a->conv.filter_h) && r.I32(&a->conv.filter_w) &&
            r.I32(&a->conv.out_c) && r.I32(&a->conv.stride_h) &&
            r.I32(&a->conv.stride_w) && r.U8(&pad) && r.I32(&a->pool.batch) &&
            r.I32(&a->pool.in_h) && r.I32(&a->pool.in_w) &&
            r.I32(&a->pool.channels) && r.I32(&a->pool.filter_h) &&
            r.I32(&a->pool.filter_w) && r.I32(&a->pool.stride_h) &&
            r.I32(&a->pool.stride_w) && r.U8(&pool_pad) && r.U8(&act) &&
            r.U8(&binw) && r.Floats(&a->bn_scale) && r.Floats(&a->bn_offset) &&
            r.Floats(&a->multiplier) && r.Floats(&a->bias) && r.U8(&pre_act) &&
            r.U8(&bout) && r.I32(&a->fc_in_features) &&
            r.I32(&a->fc_out_features) && r.I32(&a->slice_begin) &&
            r.I32(&a->slice_count) && r.F32(&a->input_quant.scale) &&
            r.I32(&a->input_quant.zero_point) &&
            r.F32(&a->weight_quant.scale) &&
            r.I32(&a->weight_quant.zero_point) &&
            r.F32(&a->output_quant.scale) &&
            r.I32(&a->output_quant.zero_point);
  if (!ok) return false;
  std::uint32_t n_bias_i32;
  if (!r.U32(&n_bias_i32)) return false;
  if (static_cast<std::size_t>(n_bias_i32) * sizeof(std::int32_t) >
      r.Remaining()) {
    return false;
  }
  a->bias_int32.resize(n_bias_i32);
  if (!r.Raw(a->bias_int32.data(), n_bias_i32 * sizeof(std::int32_t))) {
    return false;
  }
  if (!r.Floats(&a->weight_scales)) return false;
  if (!r.Floats(&a->prelu_slope)) return false;
  // Enum bytes are untrusted: reject out-of-range values here so no
  // malformed enum ever enters an OpAttrs (switches over these enums
  // downstream have no default case for garbage).
  if (!IsValidPadding(pad) || !IsValidPadding(pool_pad) ||
      !IsValidActivation(act) || !IsValidActivation(pre_act) ||
      !IsValidGraphBConvOutputType(bout)) {
    return false;
  }
  a->conv.padding = static_cast<Padding>(pad);
  a->pool.padding = static_cast<Padding>(pool_pad);
  a->activation = static_cast<Activation>(act);
  a->binarize_weights = binw != 0;
  a->pre_activation = static_cast<Activation>(pre_act);
  a->bconv_output = static_cast<BConvOutputType>(bout);
  return true;
}

}  // namespace

std::vector<std::uint8_t> SerializeGraph(const Graph& g) {
  Writer w;
  w.Raw(kMagic, 4);
  w.U32(kVersion);

  // Dense renumbering: producer-less values first (id order), then one value
  // per live node in topological order.
  std::map<int, std::uint32_t> remap;
  std::uint32_t next = 0;

  std::vector<const Value*> leading;
  for (const auto& v : g.values()) {
    if (v->producer >= 0 || !v->alive) continue;
    // Skip constants no longer referenced by live nodes.
    if (v->is_constant) {
      bool used = false;
      for (int c : v->consumers) used |= g.node(c).alive;
      if (!used) continue;
    }
    leading.push_back(v.get());
    remap[v->id] = next++;
  }
  const auto order = g.TopologicalOrder();
  for (int id : order) remap[g.node(id).outputs[0]] = next++;

  w.U32(static_cast<std::uint32_t>(leading.size()));
  for (const Value* v : leading) {
    w.U8(v->is_constant ? 1 : 0);
    w.Str(v->name);
    w.U8(static_cast<std::uint8_t>(v->dtype));
    w.U8(static_cast<std::uint8_t>(v->shape.rank()));
    for (int d = 0; d < v->shape.rank(); ++d) w.I64(v->shape.dim(d));
    if (v->is_constant) {
      const std::size_t bytes = v->constant_data.byte_size();
      w.I64(static_cast<std::int64_t>(bytes));
      w.Raw(v->constant_data.raw_data(), bytes);
    }
  }

  w.U32(static_cast<std::uint32_t>(order.size()));
  for (int id : order) {
    const Node& n = g.node(id);
    w.Str(n.name);
    w.U8(static_cast<std::uint8_t>(n.type));
    w.U32(static_cast<std::uint32_t>(n.inputs.size()));
    for (int in : n.inputs) {
      const auto it = remap.find(in);
      if (it == remap.end()) {
        // A live node referencing a value that is neither a leading value
        // nor an earlier node's output means the graph is structurally
        // inconsistent. Refuse to emit a corrupt file.
        return {};
      }
      w.U32(it->second);
    }
    WriteAttrs(w, n.attrs);
  }

  w.U32(static_cast<std::uint32_t>(g.input_ids().size()));
  for (int in : g.input_ids()) {
    const auto it = remap.find(in);
    if (it == remap.end()) return {};
    w.U32(it->second);
  }
  w.U32(static_cast<std::uint32_t>(g.output_ids().size()));
  for (int out : g.output_ids()) {
    const auto it = remap.find(out);
    if (it == remap.end()) return {};
    w.U32(it->second);
  }
  return w.Take();
}

Status DeserializeGraph(const std::uint8_t* data, std::size_t size, Graph* g,
                        const ResourceLimits& limits) {
  Reader r(data, size);
  char magic[4];
  std::uint32_t version;
  if (!r.Raw(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::DataLoss("bad magic");
  }
  if (!r.U32(&version) || version != kVersion) {
    return Status::DataLoss("unsupported version");
  }

  std::uint32_t num_leading;
  if (!r.U32(&num_leading)) return Status::DataLoss("truncated header");
  if (num_leading > limits.max_values) {
    return Status::ResourceExhausted("model declares too many values");
  }
  std::size_t model_bytes = 0;  // running total of constant storage
  std::vector<int> ids;         // dense id -> graph value id
  for (std::uint32_t i = 0; i < num_leading; ++i) {
    std::uint8_t kind, dtype_u8, rank;
    std::string name;
    if (!r.U8(&kind) || !r.Str(&name) || !r.U8(&dtype_u8) || !r.U8(&rank) ||
        rank > Shape::kMaxDims) {
      return Status::DataLoss("truncated value record");
    }
    if (kind > 1) return Status::DataLoss("bad value kind");
    if (!IsValidDType(dtype_u8)) return Status::DataLoss("unknown dtype");
    std::int64_t dims[Shape::kMaxDims] = {};
    for (int d = 0; d < rank; ++d) {
      if (!r.I64(&dims[d])) return Status::DataLoss("truncated shape");
      // Reject absurd dimensions before any allocation happens: corrupt
      // files must produce errors, not gigabyte allocations.
      if (dims[d] <= 0 || dims[d] > (1 << 24)) {
        return Status::DataLoss("implausible tensor dimension");
      }
    }
    Shape shape = MakeShape(dims, rank);
    const auto dtype = static_cast<DataType>(dtype_u8);
    std::int64_t elements = 0;
    std::size_t expected = 0;
    if (!shape.checked_num_elements(&elements) ||
        !Tensor::CheckedByteSize(dtype, shape, &expected)) {
      return Status::DataLoss("implausible tensor size");
    }
    if (elements > limits.max_tensor_elements ||
        expected > limits.max_tensor_bytes) {
      return Status::ResourceExhausted("tensor exceeds the resource limit");
    }
    if (kind == 1) {
      std::int64_t bytes;
      if (!r.I64(&bytes)) return Status::DataLoss("truncated constant");
      // Validate against both the declared shape and the remaining stream
      // *before* allocating storage.
      if (bytes < 0 || static_cast<std::size_t>(bytes) != expected ||
          expected > r.Remaining()) {
        return Status::DataLoss("constant size mismatch");
      }
      if (__builtin_add_overflow(model_bytes, expected, &model_bytes) ||
          model_bytes > limits.max_model_bytes) {
        return Status::ResourceExhausted(
            "model constants exceed the resource limit");
      }
      Tensor t(dtype, shape);
      if (!r.Raw(t.raw_data(), t.byte_size())) {
        return Status::DataLoss("truncated constant data");
      }
      ids.push_back(g->AddConstant(name, std::move(t)));
    } else {
      ids.push_back(g->AddInput(name, dtype, shape));
    }
  }

  std::uint32_t num_nodes;
  if (!r.U32(&num_nodes)) return Status::DataLoss("truncated node count");
  if (num_nodes > limits.max_nodes) {
    return Status::ResourceExhausted("model declares too many nodes");
  }
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    std::string name;
    std::uint8_t type_u8;
    std::uint32_t n_inputs;
    if (!r.Str(&name) || !r.U8(&type_u8) || !r.U32(&n_inputs)) {
      return Status::DataLoss("truncated node record");
    }
    // Reject a bad op byte before trusting anything else in the record.
    if (!IsValidOpType(type_u8)) return Status::DataLoss("unknown op type");
    if (n_inputs > limits.max_node_inputs) {
      return Status::ResourceExhausted("node declares too many inputs");
    }
    std::vector<int> inputs;
    for (std::uint32_t j = 0; j < n_inputs; ++j) {
      std::uint32_t id;
      if (!r.U32(&id)) return Status::DataLoss("truncated node inputs");
      if (id >= ids.size()) return Status::DataLoss("forward value reference");
      inputs.push_back(ids[id]);
    }
    OpAttrs attrs;
    if (!ReadAttrs(r, &attrs)) {
      return Status::DataLoss("truncated or malformed attrs");
    }
    int out = -1;
    const Status added =
        g->TryAddNode(static_cast<OpType>(type_u8), name, std::move(inputs),
                      std::move(attrs), &out);
    if (!added.ok()) {
      return Status::DataLoss("invalid node in model: " + added.message());
    }
    ids.push_back(out);
  }

  std::uint32_t n_in, n_out;
  if (!r.U32(&n_in)) return Status::DataLoss("truncated io");
  for (std::uint32_t i = 0; i < n_in; ++i) {
    std::uint32_t id;
    if (!r.U32(&id) || id >= ids.size()) {
      return Status::DataLoss("bad input id");
    }
    // Inputs were registered by AddInput already; nothing further needed.
  }
  if (!r.U32(&n_out)) return Status::DataLoss("truncated io");
  for (std::uint32_t i = 0; i < n_out; ++i) {
    std::uint32_t id;
    if (!r.U32(&id) || id >= ids.size()) return Status::DataLoss("bad output id");
    g->MarkOutput(ids[id]);
  }
  if (r.Remaining() != 0) {
    return Status::DataLoss("trailing bytes after model");
  }
  // Full semantic + resource validation: a graph that parses is not yet a
  // graph that is safe to Prepare/Invoke.
  return ValidateGraph(*g, limits);
}

Status SaveModel(const Graph& g, const std::string& path) {
  const auto bytes = SerializeGraph(g);
  if (bytes.empty()) {
    return Status::InvalidArgument("graph is not serializable");
  }
  std::ofstream f(path, std::ios::binary);
  if (!f) {
    return Status::NotFound("cannot open " + path + " for writing: " +
                            std::strerror(errno));
  }
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!f) {
    return Status::DataLoss("write failed for " + path + ": " +
                            std::strerror(errno));
  }
  return Status::Ok();
}

Status LoadModel(const std::string& path, Graph* g,
                 const ResourceLimits& limits) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) {
    return Status::NotFound("cannot open " + path + ": " +
                            std::strerror(errno));
  }
  const std::streamoff end = f.tellg();
  if (end < 0) {
    return Status::DataLoss("cannot determine size of " + path + ": " +
                            std::strerror(errno));
  }
  const auto size = static_cast<std::size_t>(end);
  f.seekg(0);
  std::vector<std::uint8_t> bytes(size);
  f.read(reinterpret_cast<char*>(bytes.data()),
         static_cast<std::streamsize>(size));
  if (!f) {
    return Status::DataLoss("read failed for " + path + ": " +
                            std::strerror(errno));
  }
  return DeserializeGraph(bytes.data(), bytes.size(), g, limits);
}

}  // namespace lce
