#include "converter/passes.h"

#include <map>
#include <string>
#include <vector>

#include "core/bitpack.h"
#include "core/macros.h"

namespace lce {
namespace {

// True when the value is one of the graph's declared outputs.
bool IsGraphOutput(const Graph& g, int value_id) {
  for (int out : g.output_ids()) {
    if (out == value_id) return true;
  }
  return false;
}

// The single live consumer of a value, or -1 if it has zero or 2+ consumers.
int SingleConsumer(const Graph& g, int value_id) {
  int found = -1;
  for (int c : g.value(value_id).consumers) {
    if (!g.node(c).alive) continue;
    if (found >= 0 && found != c) return -1;
    found = c;
  }
  // A node can consume the same value twice (e.g. Add(x, x)); treat that as
  // a single consumer only if the pattern passes below tolerate it -- they
  // all re-check the consumer's op type, so this is safe.
  return found;
}

// Creates a bitpacked weights constant from a rank-2 [out][in] float
// matrix (binarized fully-connected weights).
int PackWeightsConstant2D(Graph& g, const Value& w_float,
                          const std::string& name) {
  const Shape& s = w_float.shape;  // [out, in]
  const int in = static_cast<int>(s.dim(1));
  Tensor packed(DataType::kBitpacked, s);
  BitpackMatrix(w_float.constant_data.data<float>(), s.dim(0), in,
                packed.data<TBitpacked>());
  return g.AddConstant(name, std::move(packed));
}

// Creates a bitpacked weights constant from float OHWI weights: layout
// [O][fh][fw][words(I)], the converter's 32x binary weight compression.
int PackWeightsConstant(Graph& g, const Value& w_float, const std::string& name) {
  const Shape& s = w_float.shape;  // [O, fh, fw, I]
  const int in_c = static_cast<int>(s.dim(3));
  const std::int64_t outer = s.num_elements() / in_c;
  Tensor packed(DataType::kBitpacked, s);
  BitpackMatrix(w_float.constant_data.data<float>(), outer, in_c,
                packed.data<TBitpacked>());
  return g.AddConstant(name, std::move(packed));
}

}  // namespace

int FuseBatchNormIntoFloatConv(Graph& g) {
  int fused = 0;
  const auto node_count = g.nodes().size();  // new nodes appended during loop
  for (std::size_t i = 0; i < node_count; ++i) {
    const Node& bn = g.node(static_cast<int>(i));
    if (!bn.alive || bn.type != OpType::kBatchNorm) continue;
    const Value& in = g.value(bn.inputs[0]);
    if (in.producer < 0) continue;
    Node& conv = g.node(in.producer);
    if (!conv.alive) continue;
    if (conv.type != OpType::kConv2D && conv.type != OpType::kDepthwiseConv2D) {
      continue;
    }
    if (conv.attrs.binarize_weights) continue;  // handled by the bconv pass
    if (conv.attrs.activation != Activation::kNone) continue;  // order matters
    if (SingleConsumer(g, in.id) != bn.id || IsGraphOutput(g, in.id)) continue;

    const Value& w = g.value(conv.inputs[1]);
    const auto& scale = bn.attrs.bn_scale;
    const auto& offset = bn.attrs.bn_offset;
    const int out_c = conv.attrs.conv.out_c;
    // Skip malformed candidates instead of asserting: passes may run on
    // graphs that originated from an untrusted model file.
    if (!w.is_constant || w.dtype != DataType::kFloat32 || out_c <= 0 ||
        static_cast<int>(scale.size()) != out_c ||
        static_cast<int>(offset.size()) != out_c ||
        (!conv.attrs.bias.empty() &&
         static_cast<int>(conv.attrs.bias.size()) != out_c)) {
      continue;
    }

    // New scaled weights constant.
    Tensor new_w(DataType::kFloat32, w.shape);
    const float* src = w.constant_data.data<float>();
    float* dst = new_w.data<float>();
    if (conv.type == OpType::kConv2D) {
      // OHWI: channel index is the outermost dimension.
      const std::int64_t per_filter = w.shape.num_elements() / out_c;
      for (int o = 0; o < out_c; ++o) {
        for (std::int64_t j = 0; j < per_filter; ++j) {
          dst[o * per_filter + j] = src[o * per_filter + j] * scale[o];
        }
      }
    } else {
      // Depthwise [fh, fw, C]: channel index is the innermost dimension.
      const std::int64_t positions = w.shape.num_elements() / out_c;
      for (std::int64_t p = 0; p < positions; ++p) {
        for (int c = 0; c < out_c; ++c) {
          dst[p * out_c + c] = src[p * out_c + c] * scale[c];
        }
      }
    }
    const int new_w_id = g.AddConstant(w.name + ".bn_folded", std::move(new_w));
    g.ReplaceInput(conv.id, conv.inputs[1], new_w_id);

    // New bias = old_bias * scale + offset.
    std::vector<float> new_bias(out_c);
    for (int o = 0; o < out_c; ++o) {
      const float old_b = conv.attrs.bias.empty() ? 0.0f : conv.attrs.bias[o];
      new_bias[o] = old_b * scale[o] + offset[o];
    }
    conv.attrs.bias = std::move(new_bias);

    g.ReplaceAllUses(bn.outputs[0], conv.outputs[0]);
    g.RemoveNode(bn.id);
    ++fused;
  }
  return fused;
}

int FuseActivationIntoFloatOps(Graph& g) {
  int fused = 0;
  const auto node_count = g.nodes().size();
  for (std::size_t i = 0; i < node_count; ++i) {
    const Node& relu = g.node(static_cast<int>(i));
    if (!relu.alive || relu.type != OpType::kRelu) continue;
    const Value& in = g.value(relu.inputs[0]);
    if (in.producer < 0) continue;
    Node& prod = g.node(in.producer);
    if (!prod.alive) continue;
    const bool fusable =
        (prod.type == OpType::kConv2D && !prod.attrs.binarize_weights) ||
        prod.type == OpType::kDepthwiseConv2D || prod.type == OpType::kAdd ||
        prod.type == OpType::kFullyConnected;
    if (!fusable || prod.attrs.activation != Activation::kNone) continue;
    if (SingleConsumer(g, in.id) != relu.id || IsGraphOutput(g, in.id)) continue;

    prod.attrs.activation = Activation::kRelu;
    g.ReplaceAllUses(relu.outputs[0], prod.outputs[0]);
    g.RemoveNode(relu.id);
    ++fused;
  }
  return fused;
}

int LowerBinarizedConvs(Graph& g) {
  int lowered = 0;
  // FakeSign node id -> LceQuantize output value, so convolutions sharing a
  // binarized input share one quantize op.
  std::map<int, int> quantize_cache;

  const auto node_count = g.nodes().size();
  for (std::size_t i = 0; i < node_count; ++i) {
    const Node& conv = g.node(static_cast<int>(i));
    if (!conv.alive || conv.type != OpType::kConv2D ||
        !conv.attrs.binarize_weights) {
      continue;
    }
    const Value& x = g.value(conv.inputs[0]);
    if (x.producer < 0) continue;
    const Node& sign = g.node(x.producer);
    if (!sign.alive || sign.type != OpType::kFakeSign) continue;

    // LceQuantize on the sign's input (bitpacking extracts exactly the sign
    // bits, so quantize(x) == bitpack(sign(x))).
    int q_out;
    auto it = quantize_cache.find(sign.id);
    if (it != quantize_cache.end()) {
      q_out = it->second;
    } else {
      OpAttrs q_attrs;
      q_out = g.AddNode(OpType::kLceQuantize, sign.name + ".quantize",
                        {sign.inputs[0]}, q_attrs);
      quantize_cache[sign.id] = q_out;
    }

    // Bitpacked weights constant (32x compression).
    const Value& w = g.value(conv.inputs[1]);
    if (!w.is_constant || w.dtype != DataType::kFloat32 ||
        w.shape.rank() != 4) {
      continue;  // not a lowerable candidate; leave the float conv in place
    }
    const int packed_w = PackWeightsConstant(g, w, w.name + ".bitpacked");

    OpAttrs attrs;
    attrs.conv.stride_h = conv.attrs.conv.stride_h;
    attrs.conv.stride_w = conv.attrs.conv.stride_w;
    attrs.conv.padding = conv.attrs.conv.padding;
    attrs.bconv_output = BConvOutputType::kFloat;
    attrs.pre_activation = conv.attrs.activation;  // usually kNone
    const int bconv_out = g.AddNode(OpType::kLceBConv2d, conv.name + ".lce",
                                    {q_out, packed_w}, attrs);

    g.ReplaceAllUses(conv.outputs[0], bconv_out);
    g.RemoveNode(conv.id);
    ++lowered;
  }
  return lowered;
}

int LowerBinarizedFullyConnected(Graph& g) {
  int lowered = 0;
  std::map<int, int> quantize_cache;
  const auto node_count = g.nodes().size();
  for (std::size_t i = 0; i < node_count; ++i) {
    const Node& fc = g.node(static_cast<int>(i));
    if (!fc.alive || fc.type != OpType::kFullyConnected ||
        !fc.attrs.binarize_weights) {
      continue;
    }
    const Value& x = g.value(fc.inputs[0]);
    if (x.producer < 0) continue;
    const Node& sign = g.node(x.producer);
    if (!sign.alive || sign.type != OpType::kFakeSign) continue;

    int q_out;
    auto it = quantize_cache.find(sign.id);
    if (it != quantize_cache.end()) {
      q_out = it->second;
    } else {
      OpAttrs q_attrs;
      q_out = g.AddNode(OpType::kLceQuantize, sign.name + ".quantize",
                        {sign.inputs[0]}, q_attrs);
      quantize_cache[sign.id] = q_out;
    }

    const Value& w = g.value(fc.inputs[1]);
    if (!w.is_constant || w.dtype != DataType::kFloat32 ||
        w.shape.rank() != 2) {
      continue;  // not a lowerable candidate; leave the float FC in place
    }
    const int packed_w = PackWeightsConstant2D(g, w, w.name + ".bitpacked");

    OpAttrs attrs;
    attrs.pre_activation = fc.attrs.activation;
    const int out = g.AddNode(OpType::kLceBFullyConnected, fc.name + ".lce",
                              {q_out, packed_w}, attrs);
    g.ReplaceAllUses(fc.outputs[0], out);
    g.RemoveNode(fc.id);
    ++lowered;
  }
  return lowered;
}

int FuseBConvOutputTransform(Graph& g) {
  int fused = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < g.nodes().size(); ++i) {
      Node& bc = g.node(static_cast<int>(i));
      const bool is_bconv = bc.alive && bc.type == OpType::kLceBConv2d;
      const bool is_bfc = bc.alive && bc.type == OpType::kLceBFullyConnected;
      if (!is_bconv && !is_bfc) continue;
      if (is_bconv && bc.attrs.bconv_output != BConvOutputType::kFloat) {
        continue;
      }
      const int out = bc.outputs[0];
      if (IsGraphOutput(g, out)) continue;
      const int consumer = SingleConsumer(g, out);
      if (consumer < 0) continue;
      Node& next = g.node(consumer);

      if (next.type == OpType::kRelu && bc.attrs.multiplier.empty() &&
          bc.attrs.bias.empty() &&
          bc.attrs.pre_activation == Activation::kNone) {
        bc.attrs.pre_activation = Activation::kRelu;
        g.ReplaceAllUses(next.outputs[0], out);
        g.RemoveNode(next.id);
        ++fused;
        changed = true;
        continue;
      }

      if (next.type == OpType::kBatchNorm) {
        const auto& scale = next.attrs.bn_scale;
        const auto& offset = next.attrs.bn_offset;
        const int out_c = is_bfc ? bc.attrs.fc_out_features
                                 : bc.attrs.conv.out_c;
        // Every vector indexed below must cover out_c entries; skip the
        // fusion (rather than read out of bounds) when they do not.
        if (out_c <= 0 || static_cast<int>(scale.size()) != out_c ||
            static_cast<int>(offset.size()) != out_c ||
            (!bc.attrs.multiplier.empty() &&
             static_cast<int>(bc.attrs.multiplier.size()) != out_c) ||
            (!bc.attrs.bias.empty() &&
             static_cast<int>(bc.attrs.bias.size()) != out_c)) {
          continue;
        }
        std::vector<float> mult(out_c), bias(out_c);
        for (int o = 0; o < out_c; ++o) {
          const float m = bc.attrs.multiplier.empty() ? 1.0f : bc.attrs.multiplier[o];
          const float b = bc.attrs.bias.empty() ? 0.0f : bc.attrs.bias[o];
          mult[o] = m * scale[o];
          bias[o] = b * scale[o] + offset[o];
        }
        bc.attrs.multiplier = std::move(mult);
        bc.attrs.bias = std::move(bias);
        g.ReplaceAllUses(next.outputs[0], out);
        g.RemoveNode(next.id);
        ++fused;
        changed = true;
        continue;
      }
    }
  }
  return fused;
}

int SwapMaxPoolSign(Graph& g) {
  int swapped = 0;
  const auto node_count = g.nodes().size();
  for (std::size_t i = 0; i < node_count; ++i) {
    const Node& mp = g.node(static_cast<int>(i));
    if (!mp.alive || mp.type != OpType::kMaxPool2D) continue;
    const int out = mp.outputs[0];
    if (IsGraphOutput(g, out)) continue;
    const int consumer = SingleConsumer(g, out);
    if (consumer < 0) continue;
    const Node& q = g.node(consumer);
    if (q.type != OpType::kLceQuantize) continue;

    OpAttrs q_attrs;
    const int q_out = g.AddNode(OpType::kLceQuantize, mp.name + ".pre_quantize",
                                {mp.inputs[0]}, q_attrs);
    OpAttrs bmp_attrs;
    bmp_attrs.pool.filter_h = mp.attrs.pool.filter_h;
    bmp_attrs.pool.filter_w = mp.attrs.pool.filter_w;
    bmp_attrs.pool.stride_h = mp.attrs.pool.stride_h;
    bmp_attrs.pool.stride_w = mp.attrs.pool.stride_w;
    bmp_attrs.pool.padding = mp.attrs.pool.padding;
    const int bmp_out = g.AddNode(OpType::kLceBMaxPool2d, mp.name + ".binary",
                                  {q_out}, bmp_attrs);

    g.ReplaceAllUses(q.outputs[0], bmp_out);
    g.RemoveNode(q.id);
    g.RemoveNode(mp.id);
    ++swapped;
  }
  return swapped;
}

int ElideQuantize(Graph& g) {
  int elided = 0;
  const auto node_count = g.nodes().size();
  for (std::size_t i = 0; i < node_count; ++i) {
    Node& bc = g.node(static_cast<int>(i));
    if (!bc.alive || bc.type != OpType::kLceBConv2d) continue;
    if (bc.attrs.bconv_output != BConvOutputType::kFloat) continue;
    const int out = bc.outputs[0];
    if (IsGraphOutput(g, out)) continue;
    const auto& consumers = g.value(out).consumers;
    if (consumers.empty()) continue;
    bool all_quantize = true;
    for (int c : consumers) {
      if (!g.node(c).alive || g.node(c).type != OpType::kLceQuantize) {
        all_quantize = false;
        break;
      }
    }
    if (!all_quantize) continue;

    // Switch the bconv to direct bitpacked output; the fused transform
    // becomes the precomputed-threshold comparison.
    bc.attrs.bconv_output = BConvOutputType::kBitpacked;
    g.SetValueType(out, DataType::kBitpacked);
    // Copy: RemoveNode mutates the consumer list we're iterating.
    const std::vector<int> qs(consumers.begin(), consumers.end());
    for (int c : qs) {
      Node& q = g.node(c);
      if (!q.alive) continue;
      g.ReplaceAllUses(q.outputs[0], out);
      g.RemoveNode(q.id);
    }
    ++elided;
  }
  return elided;
}

int CancelLceQuantizeDequantize(Graph& g) {
  int cancelled = 0;
  const auto node_count = g.nodes().size();
  for (std::size_t i = 0; i < node_count; ++i) {
    const Node& q = g.node(static_cast<int>(i));
    if (!q.alive || q.type != OpType::kLceQuantize) continue;
    const Value& in = g.value(q.inputs[0]);
    if (in.producer < 0) continue;
    const Node& dq = g.node(in.producer);
    if (!dq.alive || dq.type != OpType::kLceDequantize) continue;
    // quantize(dequantize(x)) == x for bitpacked x: dequantize emits exact
    // +/-1.0 floats whose sign bits reproduce the original words.
    g.ReplaceAllUses(q.outputs[0], dq.inputs[0]);
    g.RemoveNode(q.id);
    ++cancelled;
  }
  return cancelled;
}

int EliminateDeadNodes(Graph& g) {
  int removed = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < g.nodes().size(); ++i) {
      const Node& n = g.node(static_cast<int>(i));
      if (!n.alive) continue;
      bool used = false;
      for (int out : n.outputs) {
        if (IsGraphOutput(g, out)) used = true;
        for (int c : g.value(out).consumers) {
          if (g.node(c).alive) used = true;
        }
      }
      if (!used) {
        g.RemoveNode(n.id);
        ++removed;
        changed = true;
      }
    }
  }
  return removed;
}

}  // namespace lce
