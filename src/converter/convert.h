// The LCE converter (paper section 3.1): transforms a *training graph*
// (float-emulated binarization, separate batch-norm/activation nodes) into
// an *inference graph* with true binarized operators, fused output
// transforms, bitpacked weights and bitpacked layer-to-layer chaining.
//
// Pass pipeline (each pass is also available individually in passes.h):
//   1. FuseBatchNormIntoFloatConv   -- "for free" folding into weights/bias
//   2. FuseActivationIntoFloatOps   -- TFLite-style ReLU fusion
//   3. LowerBinarizedConvs          -- FakeSign+Conv2D -> LceQuantize+LceBConv2d
//                                      (includes 32x binary weight compression)
//   4. FuseBConvOutputTransform     -- ReLU / BatchNorm chains -> fused
//                                      multiplier/bias/pre-activation
//   5. SwapMaxPoolSign              -- MaxPool∘sign -> LceBMaxPool2d∘sign
//   6. ElideQuantize                -- bconv -> quantize chains become
//                                      direct bitpacked output (thresholds)
//   7. EliminateDeadNodes
#ifndef LCE_CONVERTER_CONVERT_H_
#define LCE_CONVERTER_CONVERT_H_

#include "core/status.h"
#include "graph/ir.h"

namespace lce {

struct ConvertOptions {
  bool fuse_batch_norm = true;
  bool fuse_activations = true;
  bool fuse_bconv_output_transform = true;
  bool swap_maxpool_sign = true;
  bool elide_quantize = true;
  // Turns on the process-wide telemetry tracer before the pass pipeline
  // runs (same tracer as InterpreterOptions::enable_tracing / LCE_TRACE).
  // Every pass then emits a span carrying its rewrite count.
  bool enable_tracing = false;
};

struct ConvertStats {
  int batch_norms_fused_into_float_conv = 0;
  int activations_fused = 0;
  int bconvs_lowered = 0;
  int bfcs_lowered = 0;
  int bconv_transforms_fused = 0;
  int maxpools_binarized = 0;
  int quantizes_elided = 0;
  int dead_nodes_removed = 0;
};

// Deep-copies a graph (constant tensor storage is shared, which is safe
// because constants are read-only).
Graph CloneGraph(const Graph& g);

// Converts `g` in place. The graph is validated after every pass; a failed
// validation aborts the conversion with an error.
Status Convert(Graph& g, const ConvertOptions& options = {},
               ConvertStats* stats = nullptr);

}  // namespace lce

#endif  // LCE_CONVERTER_CONVERT_H_
