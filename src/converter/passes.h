// Individual converter passes. Each returns the number of rewrites applied.
// All passes preserve graph semantics; tests verify this by executing the
// graph before and after.
#ifndef LCE_CONVERTER_PASSES_H_
#define LCE_CONVERTER_PASSES_H_

#include "graph/ir.h"

namespace lce {

// Conv2D/DepthwiseConv2D (float, non-binarized) followed by BatchNorm whose
// input has no other use: folds the per-channel affine into the convolution
// weights and bias ("the fused multiplication can be performed for free").
int FuseBatchNormIntoFloatConv(Graph& g);

// Conv2D / Add followed by a ReLU whose input has no other use: fuses the
// activation into the producing op.
int FuseActivationIntoFloatOps(Graph& g);

// FakeSign -> FullyConnected[binarize_weights] patterns become LceQuantize
// -> LceBFullyConnected with bitpacked weights.
int LowerBinarizedFullyConnected(Graph& g);

// FakeSign -> Conv2D[binarize_weights] patterns become LceQuantize ->
// LceBConv2d with bitpacked weight constants. SAME_ZERO padding on the
// emulated conv becomes a SAME_ZERO LceBConv2d (correction path); graphs
// trained with one-padding carry kSameOne and need no correction.
int LowerBinarizedConvs(Graph& g);

// LceBConv2d (float output) followed by ReLU and/or BatchNorm chains with no
// other uses: fuses into the output transform (pre-activation + per-channel
// multiplier/bias).
int FuseBConvOutputTransform(Graph& g);

// MaxPool2D whose only consumer is LceQuantize: swaps to LceQuantize ->
// LceBMaxPool2d (valid because max(sign(x)) == sign(max(x))).
int SwapMaxPoolSign(Graph& g);

// LceBConv2d with float output whose consumers are all LceQuantize: switch
// the bconv to direct bitpacked output (threshold transform) and remove the
// quantize nodes.
int ElideQuantize(Graph& g);

// LceQuantize whose input comes from LceDequantize: the pair is the
// identity on bitpacked data, so consumers are rewired to the original
// bitpacked value. (Arises when hand-built graphs round-trip through float
// between binarized layers.)
int CancelLceQuantizeDequantize(Graph& g);

// Removes nodes whose outputs are unused and are not graph outputs.
int EliminateDeadNodes(Graph& g);

}  // namespace lce

#endif  // LCE_CONVERTER_PASSES_H_
