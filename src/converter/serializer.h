// LCEM model-file serialization: the deployable artifact the converter
// produces (playing the role of the TFLite flatbuffer in the paper).
// Binary weights are stored bitpacked, so binarized layers take 1 bit per
// weight -- 32x smaller than the float training checkpoint.
//
// Format (little endian):
//   magic "LCEM", u32 version
//   u32 num_leading_values            (graph inputs + constants, id order)
//     per value: u8 kind(0=input,1=constant), str name, u8 dtype, u8 rank,
//                i64 dims[rank]; constants append u64 nbytes + raw data
//   u32 num_nodes                     (live nodes, topological order)
//     per node: str name, u8 op, u32 n_inputs, u32 ids[n], attrs
//   u32 n_graph_inputs, u32 ids[...]; u32 n_graph_outputs, u32 ids[...]
#ifndef LCE_CONVERTER_SERIALIZER_H_
#define LCE_CONVERTER_SERIALIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/resource_limits.h"
#include "core/status.h"
#include "graph/ir.h"

namespace lce {

// Serializes the live part of the graph. Node order is topological, value
// ids are renumbered densely. Returns an empty buffer if the graph is
// structurally inconsistent (a live node referencing an unserializable
// value); SaveModel turns that into a Status.
std::vector<std::uint8_t> SerializeGraph(const Graph& g);

// Parses a serialized model. The byte stream is untrusted: every structural
// defect returns kDataLoss, every semantic defect kInvalidArgument and every
// limit violation kResourceExhausted -- never a crash, abort or unbounded
// allocation. On success the graph has passed full ValidateGraph, so
// Interpreter::Prepare/Invoke on it is safe.
Status DeserializeGraph(const std::uint8_t* data, std::size_t size, Graph* g,
                        const ResourceLimits& limits = {});

// File convenience wrappers. Load errors include the path and the OS error.
Status SaveModel(const Graph& g, const std::string& path);
Status LoadModel(const std::string& path, Graph* g,
                 const ResourceLimits& limits = {});

}  // namespace lce

#endif  // LCE_CONVERTER_SERIALIZER_H_
