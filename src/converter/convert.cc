#include "converter/convert.h"

#include "converter/passes.h"
#include "core/macros.h"
#include "telemetry/tracer.h"

namespace lce {

Graph CloneGraph(const Graph& g) {
  Graph out;
  // Values and nodes are recreated in id order so ids are preserved, which
  // keeps cross-references (producers/consumers/inputs/outputs) valid.
  std::vector<int> value_map(g.values().size(), -1);
  // First pass: inputs and constants (values without producers).
  // AddInput/AddConstant/AddNode allocate ids sequentially, so we must
  // recreate values in exactly the original creation order. Walk ids in
  // order and dispatch on what created them.
  for (const auto& v : g.values()) {
    if (v->producer >= 0) continue;  // created by AddNode below
    if (v->is_constant) {
      Tensor copy = v->constant_data;  // shares underlying storage
      const int id = out.AddConstant(v->name, std::move(copy));
      value_map[v->id] = id;
    } else {
      const int id = out.AddInput(v->name, v->dtype, v->shape);
      value_map[v->id] = id;
    }
  }
  // Nodes in topological (original) order.
  for (const auto& n : g.nodes()) {
    if (!n->alive) continue;
    std::vector<int> inputs;
    for (int in : n->inputs) {
      LCE_DCHECK(value_map[in] >= 0);
      inputs.push_back(value_map[in]);
    }
    const int out_val = out.AddNode(n->type, n->name, std::move(inputs),
                                    n->attrs);
    value_map[n->outputs[0]] = out_val;
  }
  for (int o : g.output_ids()) {
    LCE_DCHECK(value_map[o] >= 0);
    out.MarkOutput(value_map[o]);
  }
  return out;
}

Status Convert(Graph& g, const ConvertOptions& options, ConvertStats* stats) {
  ConvertStats local;
  ConvertStats& s = stats != nullptr ? *stats : local;

  if (options.enable_tracing) telemetry::Tracer::Global().Enable();
  LCE_TRACE_SCOPE_CAT("converter/convert", "converter");

  const auto validate = [&](const char* pass) -> Status {
    LCE_TRACE_SCOPE_CAT("converter/validate", "converter");
    Status st = g.Validate();
    if (!st.ok()) {
      return Status::Internal(std::string("validation failed after pass ") +
                              pass + ": " + st.message());
    }
    return Status::Ok();
  };
  // Runs one rewrite pass under a span carrying its rewrite count; the span
  // name must be a string literal (static storage, see TraceScope).
  const auto run_pass = [](const char* span_name, auto&& pass_fn) -> int {
    telemetry::TraceScope span(span_name, "converter");
    const int rewrites = pass_fn();
    span.AddArg("rewrites", rewrites);
    return rewrites;
  };

  if (options.fuse_batch_norm) {
    s.batch_norms_fused_into_float_conv = run_pass(
        "pass/FuseBatchNormIntoFloatConv",
        [&] { return FuseBatchNormIntoFloatConv(g); });
    LCE_RETURN_IF_ERROR(validate("FuseBatchNormIntoFloatConv"));
  }
  if (options.fuse_activations) {
    s.activations_fused = run_pass("pass/FuseActivationIntoFloatOps",
                                   [&] { return FuseActivationIntoFloatOps(g); });
    LCE_RETURN_IF_ERROR(validate("FuseActivationIntoFloatOps"));
  }
  s.bconvs_lowered = run_pass("pass/LowerBinarizedConvs",
                              [&] { return LowerBinarizedConvs(g); });
  LCE_RETURN_IF_ERROR(validate("LowerBinarizedConvs"));
  s.bfcs_lowered = run_pass("pass/LowerBinarizedFullyConnected",
                            [&] { return LowerBinarizedFullyConnected(g); });
  LCE_RETURN_IF_ERROR(validate("LowerBinarizedFullyConnected"));
  // Remove the now-unused FakeSign nodes immediately: they would otherwise
  // register as extra consumers and block the single-consumer patterns of
  // the fusion passes below.
  s.dead_nodes_removed += run_pass("pass/EliminateDeadNodes",
                                   [&] { return EliminateDeadNodes(g); });
  LCE_RETURN_IF_ERROR(validate("EliminateDeadNodes(post-lowering)"));
  if (options.fuse_bconv_output_transform) {
    s.bconv_transforms_fused = run_pass(
        "pass/FuseBConvOutputTransform",
        [&] { return FuseBConvOutputTransform(g); });
    LCE_RETURN_IF_ERROR(validate("FuseBConvOutputTransform"));
  }
  if (options.swap_maxpool_sign) {
    s.maxpools_binarized = run_pass("pass/SwapMaxPoolSign",
                                    [&] { return SwapMaxPoolSign(g); });
    LCE_RETURN_IF_ERROR(validate("SwapMaxPoolSign"));
  }
  if (options.elide_quantize) {
    s.quantizes_elided = run_pass("pass/ElideQuantize",
                                  [&] { return ElideQuantize(g); });
    LCE_RETURN_IF_ERROR(validate("ElideQuantize"));
    s.quantizes_elided += run_pass(
        "pass/CancelLceQuantizeDequantize",
        [&] { return CancelLceQuantizeDequantize(g); });
    LCE_RETURN_IF_ERROR(validate("CancelLceQuantizeDequantize"));
  }
  s.dead_nodes_removed += run_pass("pass/EliminateDeadNodes",
                                   [&] { return EliminateDeadNodes(g); });
  LCE_RETURN_IF_ERROR(validate("EliminateDeadNodes"));
  return Status::Ok();
}

}  // namespace lce
