#include "converter/ptq.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "core/macros.h"
#include "core/random.h"
#include "graph/interpreter.h"

namespace lce {
namespace {

struct ValueRange {
  float min = std::numeric_limits<float>::max();
  float max = std::numeric_limits<float>::lowest();
  void Update(const float* data, std::int64_t n) {
    for (std::int64_t i = 0; i < n; ++i) {
      min = std::min(min, data[i]);
      max = std::max(max, data[i]);
    }
  }
  bool valid() const { return min <= max; }
};

// Runs calibration batches, recording ranges for every float value
// (including graph inputs).
Status Calibrate(const Graph& g, const PtqOptions& options,
                 std::map<int, ValueRange>* ranges) {
  InterpreterOptions iopts;
  iopts.observer = [&](const Node& n, const Tensor& out) {
    if (out.dtype() != DataType::kFloat32) return;
    (*ranges)[n.outputs[0]].Update(out.data<float>(), out.num_elements());
  };
  Interpreter interp(g, iopts);
  LCE_RETURN_IF_ERROR(interp.Prepare());
  Rng rng(options.calibration_seed);
  for (int run = 0; run < options.calibration_runs; ++run) {
    for (int i = 0; i < interp.num_inputs(); ++i) {
      Tensor in = interp.input(i);
      if (in.dtype() != DataType::kFloat32) continue;
      for (std::int64_t j = 0; j < in.num_elements(); ++j) {
        in.data<float>()[j] = rng.Uniform(-1.0f, 1.0f);
      }
      (*ranges)[g.input_ids()[i]].Update(in.data<float>(), in.num_elements());
    }
    interp.Invoke();
  }
  return Status::Ok();
}

int CancelDequantizeQuantizePairs(Graph& g) {
  int cancelled = 0;
  const auto node_count = g.nodes().size();
  for (std::size_t i = 0; i < node_count; ++i) {
    const Node& q = g.node(static_cast<int>(i));
    if (!q.alive || q.type != OpType::kQuantizeInt8) continue;
    const Value& in = g.value(q.inputs[0]);
    if (in.producer < 0) continue;
    const Node& dq = g.node(in.producer);
    if (!dq.alive || dq.type != OpType::kDequantizeInt8) continue;
    // Cancellation only preserves semantics if both sides use the same
    // quantization parameters.
    const QuantParams& a = dq.attrs.input_quant;
    const QuantParams& b = q.attrs.output_quant;
    if (a.scale != b.scale || a.zero_point != b.zero_point) continue;
    g.ReplaceAllUses(q.outputs[0], dq.inputs[0]);
    g.RemoveNode(q.id);
    ++cancelled;
  }
  return cancelled;
}

}  // namespace

Status QuantizeModelInt8(Graph& g, const PtqOptions& options,
                         PtqStats* stats) {
  PtqStats local;
  PtqStats& s = stats != nullptr ? *stats : local;

  std::map<int, ValueRange> ranges;
  LCE_RETURN_IF_ERROR(Calibrate(g, options, &ranges));

  const auto node_count = g.nodes().size();
  for (std::size_t i = 0; i < node_count; ++i) {
    Node& conv = g.node(static_cast<int>(i));
    if (!conv.alive || conv.type != OpType::kConv2D) continue;
    if (conv.attrs.binarize_weights) continue;  // binarized path, not PTQ

    const int x_id = conv.inputs[0];
    const int out_id = conv.outputs[0];
    const auto in_it = ranges.find(x_id);
    const auto out_it = ranges.find(out_id);
    if (in_it == ranges.end() || !in_it->second.valid() ||
        out_it == ranges.end() || !out_it->second.valid()) {
      return Status::FailedPrecondition(
          "calibration did not cover conv " + conv.name);
    }
    const ValueRange in_range = in_it->second;
    const ValueRange out_range = out_it->second;

    // Quantization parameters: affine activations, symmetric weights.
    const QuantParams in_q = ChooseQuantParams(in_range.min, in_range.max);
    const QuantParams out_q = ChooseQuantParams(out_range.min, out_range.max);
    const Value& w = g.value(conv.inputs[1]);
    if (!w.is_constant || w.dtype != DataType::kFloat32) {
      return Status::InvalidArgument("conv " + conv.name +
                                     " has non-constant float weights; "
                                     "cannot post-training quantize");
    }
    const float* wf = w.constant_data.data<float>();
    const int out_c = conv.attrs.conv.out_c;
    const std::int64_t per_filter = w.constant_data.num_elements() / out_c;

    // Symmetric weight quantization: per output channel (TFLite's default)
    // or per tensor.
    QuantParams w_q;
    std::vector<float> weight_scales;
    if (options.per_channel_weights) {
      weight_scales.resize(out_c);
      for (int n = 0; n < out_c; ++n) {
        float bound = 0.0f;
        for (std::int64_t j = 0; j < per_filter; ++j) {
          bound = std::max(bound, std::abs(wf[n * per_filter + j]));
        }
        weight_scales[n] = bound > 0 ? bound / 127.0f : 1.0f;
      }
    } else {
      float w_min = 0.0f, w_max = 0.0f;
      for (std::int64_t j = 0; j < w.constant_data.num_elements(); ++j) {
        w_min = std::min(w_min, wf[j]);
        w_max = std::max(w_max, wf[j]);
      }
      w_q = ChooseQuantParams(w_min, w_max, /*symmetric=*/true);
    }

    // Quantized weights constant.
    Tensor wq(DataType::kInt8, w.shape);
    for (int n = 0; n < out_c; ++n) {
      const QuantParams q = options.per_channel_weights
                                ? QuantParams{weight_scales[n], 0}
                                : w_q;
      for (std::int64_t j = 0; j < per_filter; ++j) {
        wq.data<std::int8_t>()[n * per_filter + j] =
            QuantizeValue(wf[n * per_filter + j], q);
      }
    }
    const int wq_id = g.AddConstant(w.name + ".int8", std::move(wq));

    // Requantized bias at scale s_in * s_w[c].
    std::vector<std::int32_t> bias_i32;
    if (!conv.attrs.bias.empty()) {
      bias_i32.resize(conv.attrs.bias.size());
      for (std::size_t j = 0; j < conv.attrs.bias.size(); ++j) {
        const double sw = options.per_channel_weights ? weight_scales[j]
                                                      : w_q.scale;
        bias_i32[j] = static_cast<std::int32_t>(
            std::lround(conv.attrs.bias[j] / (in_q.scale * sw)));
      }
    }

    // QuantizeInt8 on the input.
    OpAttrs q_attrs;
    q_attrs.output_quant = in_q;
    const int x_q = g.AddNode(OpType::kQuantizeInt8, conv.name + ".quant",
                              {x_id}, q_attrs);

    // The quantized convolution (fused activation carried over).
    OpAttrs c_attrs;
    c_attrs.conv.stride_h = conv.attrs.conv.stride_h;
    c_attrs.conv.stride_w = conv.attrs.conv.stride_w;
    c_attrs.conv.padding = conv.attrs.conv.padding;
    c_attrs.activation = conv.attrs.activation;
    c_attrs.input_quant = in_q;
    c_attrs.weight_quant = w_q;
    c_attrs.weight_scales = std::move(weight_scales);
    c_attrs.output_quant = out_q;
    c_attrs.bias_int32 = std::move(bias_i32);
    const int y_q = g.AddNode(OpType::kConv2DInt8, conv.name + ".int8",
                              {x_q, wq_id}, c_attrs);

    // DequantizeInt8 back to float for the surrounding graph.
    OpAttrs dq_attrs;
    dq_attrs.input_quant = out_q;
    const int y = g.AddNode(OpType::kDequantizeInt8, conv.name + ".dequant",
                            {y_q}, dq_attrs);

    g.ReplaceAllUses(out_id, y);
    g.RemoveNode(conv.id);
    // The dequantize output stands in for the old conv output everywhere,
    // so downstream convolutions calibrate against the same range.
    ranges[y] = out_range;
    ++s.convs_quantized;
  }

  s.quantize_pairs_cancelled = CancelDequantizeQuantizePairs(g);
  return g.Validate();
}

}  // namespace lce
