// Serving throughput: N concurrent request streams against ONE shared
// CompiledModel (docs/SERVING.md).
//
// Each stream owns an ExecutionContext (its own arena + GEMM scratch) and
// invokes in a closed loop against the same set of packed binary weights on
// one process-shared thread pool. Reported per stream count: aggregate QPS
// and p50/p99 request latency, plus the resident packed-weight gauge --
// which must stay flat as streams scale, proving the 32x-compressed weights
// are shared rather than duplicated per stream (the pre-split
// one-Interpreter-per-request workaround duplicated them).
//
// Default: QuickNet-S, streams 1/2/4/8, intra-op pool of 1 (parallelism
// across requests, the classic serving configuration). `--full` adds
// QuickNet-M/L; `--pool=K` sizes the shared intra-op pool.
//
// `--open-loop` additionally runs the overload experiment: Poisson arrivals
// at `--overload=X` times the measured closed-loop sustainable rate are
// submitted to a bounded serving::Server (`--inflight=`, `--depth=`) with a
// per-request deadline (3x the closed-loop p99 unless `--deadline-ms=`
// overrides). The run records shed/timeout counts, queue-wait and
// admitted-latency percentiles, queue-depth peak and the resident-arena
// peak -- and structurally asserts the overload contract: queue depth never
// exceeds its bound and resident arena bytes stay flat at
// max_inflight * arena_bytes no matter the offered load.
//
// `--batch` runs the dynamic-batching experiment on an int8-heavy model
// (all-float ConvNet through PTQ -- requantized int8 gemms are where lane
// batching amortizes the packed-weight streaming best): the same 8
// closed-loop request streams are offered to a batch-1 server and to a
// `--max-batch=N` server, comparing QPS and per-request p99 at equal
// offered load, and recording the mean batch occupancy
// (admitted / batches_executed). With `--open-loop` it additionally
// overloads the batched server with Poisson arrivals. Both runs assert the
// bounds stay intact under batching: queue depth within max_queue_depth,
// resident arenas within max_inflight * the *batch-N* arena, and the
// resident packed-weight gauge flat across every compiled batch variant.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "converter/convert.h"
#include "converter/ptq.h"
#include "graph/compiled_model.h"
#include "models/builder.h"
#include "models/zoo.h"
#include "serving/server.h"
#include "telemetry/metrics.h"
#include "telemetry/run_report.h"

namespace {

using namespace lce;

struct StreamResult {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::int64_t requests = 0;
  std::int64_t resident_packed_bytes = 0;
};

std::int64_t ResidentPackedBytes() {
  return telemetry::MetricsRegistry::Global()
      .Gauge("weights.resident_packed_bytes")
      ->value();
}

// Runs `streams` closed-loop request threads against `model` for
// ~`seconds` of wall time and aggregates throughput and latency. A
// non-empty `hist_name` additionally streams every request latency into
// that registry histogram, whose full bucket list then lands in the
// --json report via the embedded metrics snapshot; the histogram's
// interpolated p99 is cross-checked against the exact order statistic
// within one bucket's relative error (<= 12.5%).
StreamResult RunStreams(const std::shared_ptr<const CompiledModel>& model,
                        int streams, double seconds,
                        const std::string& hist_name = std::string()) {
  telemetry::Histogram* hist =
      hist_name.empty()
          ? nullptr
          : telemetry::MetricsRegistry::Global().Histogram(hist_name);
  std::vector<std::vector<double>> latencies(streams);
  std::atomic<bool> stop{false};
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < streams; ++t) {
    threads.emplace_back([&, t] {
      ExecutionContext exec(model);
      Rng rng(1000 + t);
      Tensor in = exec.input(0);
      for (std::int64_t i = 0; i < in.num_elements(); ++i) {
        in.data<float>()[i] = rng.Uniform();
      }
      exec.Invoke();  // warmup, not measured
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      while (!stop.load(std::memory_order_relaxed)) {
        const auto t0 = std::chrono::steady_clock::now();
        exec.Invoke();
        const auto t1 = std::chrono::steady_clock::now();
        const double lat_s = std::chrono::duration<double>(t1 - t0).count();
        latencies[t].push_back(lat_s);
        if (hist != nullptr) {
          hist->Record(static_cast<std::int64_t>(lat_s * 1e9));
        }
      }
    });
  }
  while (ready.load() < streams) std::this_thread::yield();
  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : threads) th.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  StreamResult r;
  std::vector<double> all;
  for (const auto& per_stream : latencies) {
    r.requests += static_cast<std::int64_t>(per_stream.size());
    all.insert(all.end(), per_stream.begin(), per_stream.end());
  }
  r.qps = wall > 0 ? static_cast<double>(r.requests) / wall : 0.0;
  if (!all.empty()) {
    r.p50_ms = profiling::Percentile(all, 0.5) * 1e3;
    r.p99_ms = profiling::Percentile(all, 0.99) * 1e3;
  }
  if (hist != nullptr && !all.empty()) {
    const auto snap = hist->TakeSnapshot();
    LCE_CHECK(snap.count == r.requests &&
              "histogram count must equal the measured request count");
    std::vector<double> all_ns(all.size());
    for (std::size_t i = 0; i < all.size(); ++i) all_ns[i] = all[i] * 1e9;
    const double exact_p99 = profiling::Percentile(all_ns, 0.99);
    const double hist_p99 = snap.p99();
    LCE_CHECK(std::abs(hist_p99 - exact_p99) <= 0.125 * exact_p99 + 1.0 &&
              "histogram p99 drifted past one bucket from the exact p99");
  }
  r.resident_packed_bytes = ResidentPackedBytes();
  return r;
}

struct OpenLoopResult {
  double offered_qps = 0.0;
  double completed_qps = 0.0;
  std::int64_t submitted = 0;
  std::int64_t ok = 0;
  std::int64_t shed = 0;
  std::int64_t deadline_exceeded = 0;
  std::int64_t other = 0;
  double admitted_p50_ms = 0.0;
  double admitted_p99_ms = 0.0;
  double queue_wait_p50_ms = 0.0;
  double queue_wait_p99_ms = 0.0;
  std::int64_t queue_depth_peak = 0;
  std::int64_t arena_peak_bytes = 0;
  std::int64_t batches = 0;
  double occupancy_mean = 0.0;
};

// Open-loop overload: Poisson arrivals at `rate_qps` submitted to a bounded
// Server for ~`seconds`, independent of completion (arrivals do not slow
// down when the server backs up -- the property that separates overload
// behavior from the closed-loop runs above). All requests are drained
// before returning, so every stat covers the full arrival set.
// `max_batch` > 1 serves the arrivals through the dynamic batcher; the
// arena bound then covers the batch-N contexts (`arena_bound_per_ctx`,
// which defaults to the base model's arena when 0 / unbatched).
OpenLoopResult RunOpenLoop(const std::shared_ptr<const CompiledModel>& model,
                           double rate_qps, double seconds, int inflight,
                           int depth, double deadline_ms, int max_batch = 1,
                           std::chrono::nanoseconds batch_timeout =
                               std::chrono::nanoseconds{0},
                           std::int64_t arena_bound_per_ctx = 0) {
  serving::ServerOptions sopts;
  sopts.max_inflight = inflight;
  sopts.max_queue_depth = depth;
  sopts.max_batch_size = max_batch;
  sopts.batch_timeout = batch_timeout;
  serving::Server server(model, sopts);

  // One canonical input, copied into each admitted request's context.
  std::vector<float> input;
  {
    ExecutionContext probe(model);
    Rng rng(77);
    input.resize(probe.input(0).num_elements());
    for (auto& v : input) v = rng.Uniform();
    // Warm the pool so calibration overhead is not billed to request 0.
    std::memcpy(probe.input(0).data<float>(), input.data(),
                input.size() * sizeof(float));
    probe.Invoke();
  }
  const auto fill = [&input](ExecutionContext& ctx) {
    std::memcpy(ctx.input(0).data<float>(), input.data(),
                input.size() * sizeof(float));
  };

  // Sample the resident-arena gauge while the run is live: flatness under
  // overload is the memory half of the admission-control contract.
  auto* arena_gauge = telemetry::MetricsRegistry::Global().Gauge(
      "serving.resident_arena_bytes");
  std::atomic<bool> stop_sampler{false};
  std::atomic<std::int64_t> arena_peak{0};
  std::atomic<std::int64_t> depth_peak{0};
  std::thread sampler([&] {
    while (!stop_sampler.load(std::memory_order_relaxed)) {
      std::int64_t v = arena_gauge->value();
      std::int64_t prev = arena_peak.load(std::memory_order_relaxed);
      while (v > prev &&
             !arena_peak.compare_exchange_weak(prev, v,
                                               std::memory_order_relaxed)) {
      }
      v = server.queue_depth();
      prev = depth_peak.load(std::memory_order_relaxed);
      while (v > prev &&
             !depth_peak.compare_exchange_weak(prev, v,
                                               std::memory_order_relaxed)) {
      }
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  const auto deadline = std::chrono::nanoseconds(
      static_cast<std::int64_t>(deadline_ms * 1e6));
  std::vector<std::shared_ptr<serving::Request>> handles;
  handles.reserve(static_cast<std::size_t>(rate_qps * seconds * 1.5) + 16);
  Rng arrivals(13);
  const auto start = std::chrono::steady_clock::now();
  auto next = start;
  while (true) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (elapsed >= seconds) break;
    // Exponential inter-arrival gap: a Poisson process at rate_qps.
    // Uniform() defaults to [-1, 1); the exponential transform needs
    // [0, 1) or half the gaps come out negative (a max-rate burst).
    const double u = arrivals.Uniform(0.0f, 1.0f);
    const double gap_s = -std::log(1.0 - u) / rate_qps;
    next += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(gap_s));
    std::this_thread::sleep_until(next);
    handles.push_back(server.Submit(fill, nullptr, deadline));
  }
  // Drain: arrivals stopped, so the queue empties on its own.
  for (auto& h : handles) h->Wait();
  stop_sampler.store(true, std::memory_order_relaxed);
  sampler.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  OpenLoopResult r;
  r.submitted = static_cast<std::int64_t>(handles.size());
  r.offered_qps = wall > 0 ? static_cast<double>(r.submitted) / wall : 0.0;
  std::vector<double> admitted_ms, queue_wait_ms;
  for (const auto& h : handles) {
    const Status s = h->status();
    switch (s.code()) {
      case StatusCode::kOk:
        ++r.ok;
        admitted_ms.push_back(
            static_cast<double>(h->queue_wait_ns() + h->exec_ns()) * 1e-6);
        queue_wait_ms.push_back(static_cast<double>(h->queue_wait_ns()) * 1e-6);
        break;
      case StatusCode::kResourceExhausted:
        ++r.shed;
        break;
      case StatusCode::kDeadlineExceeded:
        ++r.deadline_exceeded;
        break;
      default:
        ++r.other;
        break;
    }
  }
  r.completed_qps = wall > 0 ? static_cast<double>(r.ok) / wall : 0.0;
  if (!admitted_ms.empty()) {
    r.admitted_p50_ms = profiling::Percentile(admitted_ms, 0.5);
    r.admitted_p99_ms = profiling::Percentile(admitted_ms, 0.99);
    r.queue_wait_p50_ms = profiling::Percentile(queue_wait_ms, 0.5);
    r.queue_wait_p99_ms = profiling::Percentile(queue_wait_ms, 0.99);
  }
  r.queue_depth_peak = depth_peak.load();
  r.arena_peak_bytes = arena_peak.load();
  const serving::ServerStats stats = server.StatsSnapshot();
  r.batches = stats.batches_executed;
  r.occupancy_mean = r.batches > 0
                         ? static_cast<double>(stats.admitted) /
                               static_cast<double>(r.batches)
                         : 0.0;

  // The overload contract, asserted structurally on every run: the queue
  // depth honors its bound and the resident arenas never exceed the pool.
  const std::int64_t per_ctx =
      arena_bound_per_ctx > 0
          ? arena_bound_per_ctx
          : static_cast<std::int64_t>(model->arena_bytes());
  LCE_CHECK(r.queue_depth_peak <= depth &&
            "admission queue exceeded max_queue_depth under overload");
  LCE_CHECK(r.arena_peak_bytes <= static_cast<std::int64_t>(inflight) * per_ctx &&
            "resident arenas exceeded max_inflight * arena_bytes");
  return r;
}

// ---------------------------------------------------------------------------
// Dynamic-batching experiment (--batch).
// ---------------------------------------------------------------------------

// All-float ConvNet quantized to int8 by PTQ: five requantized int8 gemms
// dominate the per-request cost, the configuration where batch-N lanes
// amortize the packed-weight streaming best.
Graph BuildInt8Net(int hw) {
  Graph g;
  ModelBuilder b(g, 21);
  int x = b.Input(hw, hw, 3);
  x = b.Conv(x, 32, 3, 1, Padding::kSameZero, Activation::kRelu);
  x = b.Conv(x, 32, 3, 2, Padding::kSameZero, Activation::kRelu);
  x = b.Conv(x, 64, 3, 1, Padding::kSameZero, Activation::kRelu);
  x = b.Conv(x, 64, 3, 2, Padding::kSameZero, Activation::kRelu);
  x = b.Conv(x, 128, 3, 1, Padding::kSameZero, Activation::kRelu);
  x = b.GlobalAvgPool(x);
  x = b.Dense(x, 10);
  g.MarkOutput(x);
  PtqStats ptq;
  LCE_CHECK(QuantizeModelInt8(g, {}, &ptq).ok());
  LCE_CHECK(ptq.convs_quantized == 5);
  return g;
}

struct BatchLoopResult {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::int64_t requests = 0;
  std::int64_t batches = 0;
  double occupancy_mean = 0.0;
  std::int64_t queue_depth_peak = 0;
  std::int64_t arena_peak_bytes = 0;
};

// `streams` closed-loop clients blocking on Infer() against one bounded
// Server -- the equal-offered-load harness for comparing max_batch_size
// values. Asserts the queue-depth and resident-arena bounds throughout.
BatchLoopResult RunServerClosedLoop(
    const std::shared_ptr<const CompiledModel>& model, int streams,
    double seconds, int inflight, int depth, int max_batch,
    std::chrono::nanoseconds batch_timeout, std::int64_t arena_bound_per_ctx) {
  serving::ServerOptions sopts;
  sopts.max_inflight = inflight;
  sopts.max_queue_depth = depth;
  sopts.max_batch_size = max_batch;
  sopts.batch_timeout = batch_timeout;
  serving::Server server(model, sopts);

  std::vector<float> input;
  {
    ExecutionContext probe(model);
    Rng rng(78);
    input.resize(probe.input(0).num_elements());
    for (auto& v : input) v = rng.Uniform();
  }
  const auto fill = [&input](ExecutionContext& ctx) {
    std::memcpy(ctx.input(0).data<float>(), input.data(),
                input.size() * sizeof(float));
  };

  auto* arena_gauge = telemetry::MetricsRegistry::Global().Gauge(
      "serving.resident_arena_bytes");
  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> arena_peak{0};
  std::atomic<std::int64_t> depth_peak{0};
  std::thread sampler([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::int64_t v = arena_gauge->value();
      std::int64_t prev = arena_peak.load(std::memory_order_relaxed);
      while (v > prev && !arena_peak.compare_exchange_weak(
                             prev, v, std::memory_order_relaxed)) {
      }
      v = server.queue_depth();
      prev = depth_peak.load(std::memory_order_relaxed);
      while (v > prev && !depth_peak.compare_exchange_weak(
                             prev, v, std::memory_order_relaxed)) {
      }
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  std::vector<std::vector<double>> latencies(streams);
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> clients;
  for (int t = 0; t < streams; ++t) {
    clients.emplace_back([&, t] {
      // Warmup request (pool contexts + execute-estimate histogram).
      LCE_CHECK(server.Infer(fill).ok());
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      while (!stop.load(std::memory_order_relaxed)) {
        const auto t0 = std::chrono::steady_clock::now();
        const Status s = server.Infer(fill);
        LCE_CHECK(s.ok() && "closed-loop requests cannot be shed");
        const auto t1 = std::chrono::steady_clock::now();
        latencies[t].push_back(
            std::chrono::duration<double>(t1 - t0).count());
      }
    });
  }
  while (ready.load() < streams) std::this_thread::yield();
  const serving::ServerStats warm = server.StatsSnapshot();
  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : clients) th.join();
  sampler.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  BatchLoopResult r;
  std::vector<double> all;
  for (const auto& per_stream : latencies) {
    r.requests += static_cast<std::int64_t>(per_stream.size());
    all.insert(all.end(), per_stream.begin(), per_stream.end());
  }
  r.qps = wall > 0 ? static_cast<double>(r.requests) / wall : 0.0;
  if (!all.empty()) {
    r.p50_ms = profiling::Percentile(all, 0.5) * 1e3;
    r.p99_ms = profiling::Percentile(all, 0.99) * 1e3;
  }
  const serving::ServerStats stats = server.StatsSnapshot();
  r.batches = stats.batches_executed - warm.batches_executed;
  const std::int64_t admitted = stats.admitted - warm.admitted;
  r.occupancy_mean =
      r.batches > 0 ? static_cast<double>(admitted) /
                          static_cast<double>(r.batches)
                    : 0.0;
  r.queue_depth_peak = depth_peak.load();
  r.arena_peak_bytes = arena_peak.load();
  LCE_CHECK(r.queue_depth_peak <= depth &&
            "admission queue exceeded max_queue_depth under batching");
  LCE_CHECK(r.arena_peak_bytes <=
                static_cast<std::int64_t>(inflight) * arena_bound_per_ctx &&
            "resident arenas exceeded max_inflight * batch-variant arena");
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lce::bench;
  const auto profile = ParseProfile(argc, argv);
  const bool full = HasFlag(argc, argv, "--full");
  const std::string json_path = ParseJsonPath(argc, argv);
  const int pool_threads =
      std::atoi(ParseStringFlag(argc, argv, "--pool=", "1").c_str());
  const int input_hw =
      std::atoi(ParseStringFlag(argc, argv, "--input=", "224").c_str());
  const double seconds =
      std::atof(ParseStringFlag(argc, argv, "--seconds=", "0.6").c_str());
  const bool open_loop = HasFlag(argc, argv, "--open-loop");
  const double overload =
      std::atof(ParseStringFlag(argc, argv, "--overload=", "2.0").c_str());
  const int inflight =
      std::atoi(ParseStringFlag(argc, argv, "--inflight=", "2").c_str());
  const int queue_depth =
      std::atoi(ParseStringFlag(argc, argv, "--depth=", "16").c_str());
  const double deadline_flag_ms =
      std::atof(ParseStringFlag(argc, argv, "--deadline-ms=", "0").c_str());
  const bool batch = HasFlag(argc, argv, "--batch");
  const int max_batch =
      std::atoi(ParseStringFlag(argc, argv, "--max-batch=", "4").c_str());
  const int batch_streams =
      std::atoi(ParseStringFlag(argc, argv, "--batch-streams=", "8").c_str());
  const auto batch_timeout = std::chrono::microseconds(std::atoi(
      ParseStringFlag(argc, argv, "--batch-timeout-us=", "0").c_str()));
  const int batch_input =
      std::atoi(ParseStringFlag(argc, argv, "--batch-input=", "8").c_str());

  const unsigned cores = std::thread::hardware_concurrency();
  telemetry::RunReport report("bench_serving_throughput");
  report.AddMeta("profile", ProfileName(profile));
  report.AddMetaInt("input_hw", input_hw);
  report.AddMetaInt("pool_threads", pool_threads);
  report.AddMetaInt("hardware_concurrency", cores);

  std::vector<QuickNetConfig> configs = {QuickNetSmallConfig()};
  if (full) {
    configs.push_back(QuickNetMediumConfig());
    configs.push_back(QuickNetLargeConfig());
  }
  const std::vector<int> stream_counts = full
                                             ? std::vector<int>{1, 2, 3, 4, 5,
                                                                6, 7, 8}
                                             : std::vector<int>{1, 2, 4, 8};

  // Scaling is judged against what this host can actually run in parallel:
  // the largest measured stream count that fits within the detected core
  // count (a fixed 1 -> 4 target was meaningless on 1- and 2-core CI
  // containers). hardware_concurrency() == 0 means "unknown"; assume the
  // historical 4-core host in that case, but say so in the report.
  int scaling_target = 1;
  for (const int s : stream_counts) {
    if (s <= static_cast<int>(cores == 0 ? 4u : cores)) {
      scaling_target = std::max(scaling_target, s);
    }
  }
  report.AddMetaInt("scaling_target_streams", scaling_target);

  std::printf(
      "=== Serving throughput: shared CompiledModel, per-stream "
      "ExecutionContexts (profile=%s, pool=%d, input=%d, cores=%u) ===\n\n",
      ProfileName(profile), pool_threads, input_hw, cores);

  for (const auto& cfg : configs) {
    Graph g = BuildQuickNet(cfg, input_hw);
    LCE_CHECK(Convert(g).ok());
    CompileOptions copts;
    copts.num_threads = pool_threads;
    copts.kernel_profile = profile;
    std::shared_ptr<const CompiledModel> model;
    const Status compiled = CompiledModel::Compile(g, copts, &model);
    LCE_CHECK(compiled.ok());
    std::printf("%s: arena %.2f MiB/stream, packed weights %.2f MiB (shared)\n",
                cfg.name.c_str(), model->arena_bytes() / (1024.0 * 1024.0),
                model->packed_weight_bytes() / (1024.0 * 1024.0));
    std::printf("%8s %10s %10s %10s %10s %14s\n", "streams", "QPS", "p50-ms",
                "p99-ms", "requests", "packed-MiB");

    double qps1 = 0.0, qps_target = 0.0;
    const std::int64_t packed_before = ResidentPackedBytes();
    for (int streams : stream_counts) {
      const StreamResult r = RunStreams(
          model, streams, seconds,
          "bench.closed_loop." + cfg.name + ".streams" +
              std::to_string(streams) + "_ns");
      if (streams == 1) qps1 = r.qps;
      if (streams == scaling_target) qps_target = r.qps;
      std::printf("%8d %10.1f %10.2f %10.2f %10lld %14.2f\n", streams, r.qps,
                  r.p50_ms, r.p99_ms, static_cast<long long>(r.requests),
                  r.resident_packed_bytes / (1024.0 * 1024.0));
      LCE_CHECK(r.resident_packed_bytes == packed_before &&
                "packed weights must not scale with stream count");
      const std::string prefix =
          cfg.name + ".streams" + std::to_string(streams);
      report.AddResult(prefix + ".qps", r.qps);
      report.AddResult(prefix + ".p50_ms", r.p50_ms);
      report.AddResult(prefix + ".p99_ms", r.p99_ms);
    }
    if (qps1 > 0.0 && qps_target > 0.0) {
      const double scaling = qps_target / qps1;
      std::printf("  1 -> %d stream scaling: %.2fx (host exposes %u cores)\n\n",
                  scaling_target, scaling, cores);
      report.AddResult(cfg.name + ".scaling_1_to_" +
                           std::to_string(scaling_target),
                       scaling);
      report.AddResult(cfg.name + ".scaling_to_cores", scaling);
    }

    if (open_loop) {
      // Calibrate the sustainable rate: a closed loop with exactly
      // `inflight` streams is the fastest the bounded server can complete
      // work, by construction.
      const StreamResult closed = RunStreams(model, inflight, seconds);
      const double rate = std::max(1.0, overload * closed.qps);
      const double deadline_ms = deadline_flag_ms > 0.0
                                     ? deadline_flag_ms
                                     : 3.0 * std::max(closed.p99_ms, 1.0);
      std::printf(
          "  open-loop overload: Poisson %.1f qps (%.1fx of sustainable "
          "%.1f), inflight=%d, depth=%d, deadline=%.1f ms\n",
          rate, overload, closed.qps, inflight, queue_depth, deadline_ms);
      const OpenLoopResult ol = RunOpenLoop(model, rate, seconds, inflight,
                                            queue_depth, deadline_ms);
      std::printf(
          "    submitted %lld  ok %lld  shed %lld  deadline %lld  other "
          "%lld\n",
          static_cast<long long>(ol.submitted), static_cast<long long>(ol.ok),
          static_cast<long long>(ol.shed),
          static_cast<long long>(ol.deadline_exceeded),
          static_cast<long long>(ol.other));
      std::printf(
          "    admitted p50 %.2f ms  p99 %.2f ms (closed-loop p99 %.2f ms, "
          "ratio %.2fx)\n",
          ol.admitted_p50_ms, ol.admitted_p99_ms, closed.p99_ms,
          closed.p99_ms > 0 ? ol.admitted_p99_ms / closed.p99_ms : 0.0);
      std::printf(
          "    queue wait p50 %.2f ms  p99 %.2f ms  depth peak %lld/%d  "
          "arena peak %.2f MiB (bound %.2f MiB)\n\n",
          ol.queue_wait_p50_ms, ol.queue_wait_p99_ms,
          static_cast<long long>(ol.queue_depth_peak), queue_depth,
          ol.arena_peak_bytes / (1024.0 * 1024.0),
          inflight * model->arena_bytes() / (1024.0 * 1024.0));
      const std::string p = cfg.name + ".open_loop";
      report.AddResult(p + ".offered_qps", ol.offered_qps);
      report.AddResult(p + ".completed_qps", ol.completed_qps);
      report.AddResult(p + ".submitted", static_cast<double>(ol.submitted));
      report.AddResult(p + ".ok", static_cast<double>(ol.ok));
      report.AddResult(p + ".shed", static_cast<double>(ol.shed));
      report.AddResult(p + ".deadline_exceeded",
                       static_cast<double>(ol.deadline_exceeded));
      report.AddResult(p + ".admitted_p50_ms", ol.admitted_p50_ms);
      report.AddResult(p + ".admitted_p99_ms", ol.admitted_p99_ms);
      report.AddResult(p + ".closed_loop_p99_ms", closed.p99_ms);
      report.AddResult(p + ".queue_wait_p50_ms", ol.queue_wait_p50_ms);
      report.AddResult(p + ".queue_wait_p99_ms", ol.queue_wait_p99_ms);
      report.AddResult(p + ".queue_depth_peak",
                       static_cast<double>(ol.queue_depth_peak));
      report.AddResult(p + ".arena_peak_bytes",
                       static_cast<double>(ol.arena_peak_bytes));
    }
  }

  if (batch) {
    // Int8-heavy model at a small input: per-request work is light (the
    // gemm M dimension is a few hundred rows per sample), so the per-invoke
    // overheads and per-tile packed-weight streaming that lane batching
    // amortizes are a large share of the cost.
    Graph g = BuildInt8Net(batch_input);
    CompileOptions copts;
    copts.num_threads = pool_threads;
    std::shared_ptr<const CompiledModel> model;
    LCE_CHECK(CompiledModel::Compile(g, copts, &model).ok());

    // The arena bound under batching covers the largest variant; compiling
    // it standalone also proves the packed weights are borrowed: the
    // resident gauge must not move for any batch variant.
    const std::int64_t packed_before = ResidentPackedBytes();
    std::shared_ptr<const CompiledModel> largest;
    LCE_CHECK(
        CompiledModel::CompileBatchVariant(model, max_batch, &largest).ok());
    LCE_CHECK(ResidentPackedBytes() == packed_before &&
              "batch variants must share, not duplicate, packed weights");
    const auto arena_bound =
        static_cast<std::int64_t>(largest->arena_bytes());

    std::printf(
        "=== Dynamic batching: int8net-%d, %d closed-loop streams, "
        "inflight=%d, max_batch=%d, timeout=%lld us ===\n",
        batch_input, batch_streams, inflight, max_batch,
        static_cast<long long>(batch_timeout.count()));
    const BatchLoopResult base = RunServerClosedLoop(
        model, batch_streams, seconds, inflight, queue_depth,
        /*max_batch=*/1, std::chrono::nanoseconds{0}, arena_bound);
    const BatchLoopResult batched = RunServerClosedLoop(
        model, batch_streams, seconds, inflight, queue_depth, max_batch,
        batch_timeout, arena_bound);
    LCE_CHECK(ResidentPackedBytes() == packed_before &&
              "packed weights must stay flat across the batched servers");
    const double speedup = base.qps > 0 ? batched.qps / base.qps : 0.0;
    std::printf("%12s %10s %10s %10s %10s %10s\n", "max_batch", "QPS",
                "p50-ms", "p99-ms", "batches", "occupancy");
    std::printf("%12d %10.1f %10.2f %10.2f %10lld %10.2f\n", 1, base.qps,
                base.p50_ms, base.p99_ms, static_cast<long long>(base.batches),
                base.occupancy_mean);
    std::printf("%12d %10.1f %10.2f %10.2f %10lld %10.2f\n", max_batch,
                batched.qps, batched.p50_ms, batched.p99_ms,
                static_cast<long long>(batched.batches),
                batched.occupancy_mean);
    std::printf(
        "  batching speedup %.2fx at equal offered load (target >= 1.2x); "
        "depth peak %lld/%d, arena peak %.2f/%.2f MiB\n\n",
        speedup, static_cast<long long>(batched.queue_depth_peak), queue_depth,
        batched.arena_peak_bytes / (1024.0 * 1024.0),
        inflight * arena_bound / (1024.0 * 1024.0));
    report.AddMetaInt("batch_streams", batch_streams);
    report.AddMetaInt("max_batch", max_batch);
    report.AddResult("int8net.batch1.qps", base.qps);
    report.AddResult("int8net.batch1.p99_ms", base.p99_ms);
    report.AddResult("int8net.batched.qps", batched.qps);
    report.AddResult("int8net.batched.p50_ms", batched.p50_ms);
    report.AddResult("int8net.batched.p99_ms", batched.p99_ms);
    report.AddResult("int8net.batched.occupancy_mean", batched.occupancy_mean);
    report.AddResult("int8net.batched.batches",
                     static_cast<double>(batched.batches));
    report.AddResult("int8net.batched.queue_depth_peak",
                     static_cast<double>(batched.queue_depth_peak));
    report.AddResult("int8net.batched.arena_peak_bytes",
                     static_cast<double>(batched.arena_peak_bytes));
    report.AddResult("int8net.batch_speedup", speedup);

    if (open_loop) {
      // Overload the batched server: Poisson arrivals above the batched
      // sustainable rate. Backlog raises occupancy; the bounds must hold.
      const double rate = std::max(1.0, overload * batched.qps);
      const double deadline_ms =
          deadline_flag_ms > 0.0 ? deadline_flag_ms
                                 : 3.0 * std::max(batched.p99_ms, 1.0);
      const OpenLoopResult ol =
          RunOpenLoop(model, rate, seconds, inflight, queue_depth,
                      deadline_ms, max_batch, batch_timeout, arena_bound);
      std::printf(
          "  open-loop batched overload: offered %.1f qps, ok %lld, shed "
          "%lld, deadline %lld, occupancy %.2f, depth peak %lld/%d\n\n",
          ol.offered_qps, static_cast<long long>(ol.ok),
          static_cast<long long>(ol.shed),
          static_cast<long long>(ol.deadline_exceeded), ol.occupancy_mean,
          static_cast<long long>(ol.queue_depth_peak), queue_depth);
      report.AddResult("int8net.open_loop.offered_qps", ol.offered_qps);
      report.AddResult("int8net.open_loop.completed_qps", ol.completed_qps);
      report.AddResult("int8net.open_loop.shed",
                       static_cast<double>(ol.shed));
      report.AddResult("int8net.open_loop.deadline_exceeded",
                       static_cast<double>(ol.deadline_exceeded));
      report.AddResult("int8net.open_loop.occupancy_mean", ol.occupancy_mean);
      report.AddResult("int8net.open_loop.admitted_p99_ms",
                       ol.admitted_p99_ms);
    }
  }
  std::printf(
      "Shape: QPS grows with streams (up to the core count -- aggregate\n"
      "throughput cannot scale past the cores the host exposes) while\n"
      "packed-MiB stays flat: one set of 32x-compressed weights serves every\n"
      "stream; only the per-stream arenas (intermediate activations) scale.\n");

  if (!json_path.empty()) {
    const Status st = report.WriteJson(json_path);
    if (st.ok()) {
      std::printf("[json] wrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s: %s\n", json_path.c_str(),
                   st.message().c_str());
      return 1;
    }
  }
  return 0;
}
