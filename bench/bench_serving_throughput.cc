// Serving throughput: N concurrent request streams against ONE shared
// CompiledModel (docs/SERVING.md).
//
// Each stream owns an ExecutionContext (its own arena + GEMM scratch) and
// invokes in a closed loop against the same set of packed binary weights on
// one process-shared thread pool. Reported per stream count: aggregate QPS
// and p50/p99 request latency, plus the resident packed-weight gauge --
// which must stay flat as streams scale, proving the 32x-compressed weights
// are shared rather than duplicated per stream (the pre-split
// one-Interpreter-per-request workaround duplicated them).
//
// Default: QuickNet-S, streams 1/2/4/8, intra-op pool of 1 (parallelism
// across requests, the classic serving configuration). `--full` adds
// QuickNet-M/L; `--pool=K` sizes the shared intra-op pool.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "converter/convert.h"
#include "graph/compiled_model.h"
#include "models/zoo.h"
#include "telemetry/metrics.h"
#include "telemetry/run_report.h"

namespace {

using namespace lce;

struct StreamResult {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::int64_t requests = 0;
  std::int64_t resident_packed_bytes = 0;
};

std::int64_t ResidentPackedBytes() {
  return telemetry::MetricsRegistry::Global()
      .Gauge("weights.resident_packed_bytes")
      ->value();
}

// Runs `streams` closed-loop request threads against `model` for
// ~`seconds` of wall time and aggregates throughput and latency.
StreamResult RunStreams(const std::shared_ptr<const CompiledModel>& model,
                        int streams, double seconds) {
  std::vector<std::vector<double>> latencies(streams);
  std::atomic<bool> stop{false};
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < streams; ++t) {
    threads.emplace_back([&, t] {
      ExecutionContext exec(model);
      Rng rng(1000 + t);
      Tensor in = exec.input(0);
      for (std::int64_t i = 0; i < in.num_elements(); ++i) {
        in.data<float>()[i] = rng.Uniform();
      }
      exec.Invoke();  // warmup, not measured
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      while (!stop.load(std::memory_order_relaxed)) {
        const auto t0 = std::chrono::steady_clock::now();
        exec.Invoke();
        const auto t1 = std::chrono::steady_clock::now();
        latencies[t].push_back(
            std::chrono::duration<double>(t1 - t0).count());
      }
    });
  }
  while (ready.load() < streams) std::this_thread::yield();
  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : threads) th.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  StreamResult r;
  std::vector<double> all;
  for (const auto& per_stream : latencies) {
    r.requests += static_cast<std::int64_t>(per_stream.size());
    all.insert(all.end(), per_stream.begin(), per_stream.end());
  }
  r.qps = wall > 0 ? static_cast<double>(r.requests) / wall : 0.0;
  if (!all.empty()) {
    r.p50_ms = profiling::Percentile(all, 0.5) * 1e3;
    r.p99_ms = profiling::Percentile(all, 0.99) * 1e3;
  }
  r.resident_packed_bytes = ResidentPackedBytes();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lce::bench;
  const auto profile = ParseProfile(argc, argv);
  const bool full = HasFlag(argc, argv, "--full");
  const std::string json_path = ParseJsonPath(argc, argv);
  const int pool_threads =
      std::atoi(ParseStringFlag(argc, argv, "--pool=", "1").c_str());
  const int input_hw =
      std::atoi(ParseStringFlag(argc, argv, "--input=", "224").c_str());
  const double seconds =
      std::atof(ParseStringFlag(argc, argv, "--seconds=", "0.6").c_str());

  const unsigned cores = std::thread::hardware_concurrency();
  telemetry::RunReport report("bench_serving_throughput");
  report.AddMeta("profile", ProfileName(profile));
  report.AddMetaInt("input_hw", input_hw);
  report.AddMetaInt("pool_threads", pool_threads);
  report.AddMetaInt("hardware_concurrency", cores);

  std::vector<QuickNetConfig> configs = {QuickNetSmallConfig()};
  if (full) {
    configs.push_back(QuickNetMediumConfig());
    configs.push_back(QuickNetLargeConfig());
  }
  const std::vector<int> stream_counts = full
                                             ? std::vector<int>{1, 2, 3, 4, 5,
                                                                6, 7, 8}
                                             : std::vector<int>{1, 2, 4, 8};

  // Scaling is judged against what this host can actually run in parallel:
  // the largest measured stream count that fits within the detected core
  // count (a fixed 1 -> 4 target was meaningless on 1- and 2-core CI
  // containers). hardware_concurrency() == 0 means "unknown"; assume the
  // historical 4-core host in that case, but say so in the report.
  int scaling_target = 1;
  for (const int s : stream_counts) {
    if (s <= static_cast<int>(cores == 0 ? 4u : cores)) {
      scaling_target = std::max(scaling_target, s);
    }
  }
  report.AddMetaInt("scaling_target_streams", scaling_target);

  std::printf(
      "=== Serving throughput: shared CompiledModel, per-stream "
      "ExecutionContexts (profile=%s, pool=%d, input=%d, cores=%u) ===\n\n",
      ProfileName(profile), pool_threads, input_hw, cores);

  for (const auto& cfg : configs) {
    Graph g = BuildQuickNet(cfg, input_hw);
    LCE_CHECK(Convert(g).ok());
    CompileOptions copts;
    copts.num_threads = pool_threads;
    copts.kernel_profile = profile;
    std::shared_ptr<const CompiledModel> model;
    const Status compiled = CompiledModel::Compile(g, copts, &model);
    LCE_CHECK(compiled.ok());
    std::printf("%s: arena %.2f MiB/stream, packed weights %.2f MiB (shared)\n",
                cfg.name.c_str(), model->arena_bytes() / (1024.0 * 1024.0),
                model->packed_weight_bytes() / (1024.0 * 1024.0));
    std::printf("%8s %10s %10s %10s %10s %14s\n", "streams", "QPS", "p50-ms",
                "p99-ms", "requests", "packed-MiB");

    double qps1 = 0.0, qps_target = 0.0;
    const std::int64_t packed_before = ResidentPackedBytes();
    for (int streams : stream_counts) {
      const StreamResult r = RunStreams(model, streams, seconds);
      if (streams == 1) qps1 = r.qps;
      if (streams == scaling_target) qps_target = r.qps;
      std::printf("%8d %10.1f %10.2f %10.2f %10lld %14.2f\n", streams, r.qps,
                  r.p50_ms, r.p99_ms, static_cast<long long>(r.requests),
                  r.resident_packed_bytes / (1024.0 * 1024.0));
      LCE_CHECK(r.resident_packed_bytes == packed_before &&
                "packed weights must not scale with stream count");
      const std::string prefix =
          cfg.name + ".streams" + std::to_string(streams);
      report.AddResult(prefix + ".qps", r.qps);
      report.AddResult(prefix + ".p50_ms", r.p50_ms);
      report.AddResult(prefix + ".p99_ms", r.p99_ms);
    }
    if (qps1 > 0.0 && qps_target > 0.0) {
      const double scaling = qps_target / qps1;
      std::printf("  1 -> %d stream scaling: %.2fx (host exposes %u cores)\n\n",
                  scaling_target, scaling, cores);
      report.AddResult(cfg.name + ".scaling_1_to_" +
                           std::to_string(scaling_target),
                       scaling);
      report.AddResult(cfg.name + ".scaling_to_cores", scaling);
    }
  }
  std::printf(
      "Shape: QPS grows with streams (up to the core count -- aggregate\n"
      "throughput cannot scale past the cores the host exposes) while\n"
      "packed-MiB stays flat: one set of 32x-compressed weights serves every\n"
      "stream; only the per-stream arenas (intermediate activations) scale.\n");

  if (!json_path.empty()) {
    const Status st = report.WriteJson(json_path);
    if (st.ok()) {
      std::printf("[json] wrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s: %s\n", json_path.c_str(),
                   st.message().c_str());
      return 1;
    }
  }
  return 0;
}
