// Figure 4: LCE's packed BGEMM versus reimplementations of the competing
// frameworks' kernel strategies (DaBNN-style direct kernel, TVM/Riptide-
// style generic codegen loop, BMXNet-style rank-1-update loop) on the
// Figure 2 convolutions. All strategies run on identical bitpacked
// im2col patches, so the comparison isolates the BGEMM design.
//
// Paper shape to reproduce: LCE fastest on every convolution; the generic
// TVM-style kernel and the unpacked BMXNet-style kernel trail the
// hand-blocked kernels. (Paper text also reports BiRealNet total latency:
// LCE 86.8 ms vs DaBNN 119.8 ms on a Raspberry Pi 4B.)
#include <cstdio>

#include "bench_common.h"
#include "core/bitpack.h"
#include "gemm/baselines.h"
#include "gemm/bgemm.h"
#include "kernels/im2col.h"
#include "models/zoo.h"
#include "telemetry/run_report.h"

namespace {

using namespace lce;
using namespace lce::bench;

struct Workload {
  int m = 0, n = 0, kw = 0, k_bits = 0;
  std::vector<TBitpacked> patches;  // im2col output [m][kw]
  std::vector<TBitpacked> weights;  // [n][kw]
  std::vector<std::int32_t> out;
};

Workload MakeWorkload(const ConvDims& d) {
  Conv2DGeometry g;
  g.in_h = g.in_w = d.hw;
  g.in_c = g.out_c = d.channels;
  g.filter_h = g.filter_w = d.kernel;
  g.padding = Padding::kSameOne;

  Rng rng(d.hw + d.channels);
  Tensor input_f(DataType::kFloat32, Shape{1, d.hw, d.hw, d.channels});
  FillSigns(input_f, rng);
  Tensor input_b(DataType::kBitpacked, input_f.shape());
  BitpackTensor(input_f, input_b);

  Workload w;
  w.m = static_cast<int>(Im2ColRows(g));
  w.n = d.channels;
  w.kw = Im2ColDepthBitpacked(g);
  w.k_bits = d.kernel * d.kernel * d.channels;
  w.patches.resize(static_cast<std::size_t>(w.m) * w.kw);
  Im2ColBitpacked(input_b.data<TBitpacked>(), g, w.patches.data());
  w.weights.resize(static_cast<std::size_t>(w.n) * w.kw);
  for (auto& v : w.weights) v = static_cast<TBitpacked>(rng.Next());
  w.out.resize(static_cast<std::size_t>(w.m) * w.n);
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  const auto profile = ParseProfile(argc, argv);
  const std::string json_path = ParseJsonPath(argc, argv);
  telemetry::RunReport report("bench_fig4_framework_comparison");
  report.AddMeta("profile", ProfileName(profile));
  gemm::Context ctx(1, profile);

  std::printf(
      "=== Figure 4: BGEMM strategy comparison on convs A-D (profile=%s) "
      "===\n\n",
      ProfileName(profile));
  std::printf("%-18s %12s %14s %14s %14s\n", "Convolution", "LCE (ms)",
              "DaBNN (ms)", "TVM (ms)", "BMXNet (ms)");

  for (const auto& [name, dims] : ResNet18Convs()) {
    Workload w = MakeWorkload(dims);
    gemm::PackedBinaryMatrix packed(w.weights.data(), w.n, w.kw);

    const double lce = profiling::MeasureMedianSeconds([&] {
      gemm::BGemm(w.patches.data(), w.m, packed, w.k_bits, w.out.data(), w.n,
                  ctx);
    });
    const double dabnn = profiling::MeasureMedianSeconds([&] {
      gemm::DaBnnStyleBGemm(w.patches.data(), w.m, w.weights.data(), w.n,
                            w.kw, w.k_bits, w.out.data(), w.n);
    });
    const double tvm = profiling::MeasureMedianSeconds([&] {
      gemm::TvmStyleBGemm(w.patches.data(), w.m, w.weights.data(), w.n, w.kw,
                          w.k_bits, w.out.data(), w.n);
    });
    const double bmxnet = profiling::MeasureMedianSeconds([&] {
      gemm::BmxnetStyleBGemm(w.patches.data(), w.m, w.weights.data(), w.n,
                             w.kw, w.k_bits, w.out.data(), w.n);
    });
    std::printf("%-18s %12.3f %14.3f %14.3f %14.3f\n", name.c_str(),
                lce * 1e3, dabnn * 1e3, tvm * 1e3, bmxnet * 1e3);
    report.AddResult(name + ".lce_ms", lce * 1e3);
    report.AddResult(name + ".dabnn_ms", dabnn * 1e3);
    report.AddResult(name + ".tvm_ms", tvm * 1e3);
    report.AddResult(name + ".bmxnet_ms", bmxnet * 1e3);
  }

  // The paper's BiRealNet end-to-end comparison (text of section 4.2).
  std::printf("\nBiRealNet end-to-end latency with LCE (paper: 86.8 ms LCE vs"
              " 119.8 ms DaBNN on RPi 4B):\n");
  Graph g;
  auto interp = PrepareConverted(
      g, [](int hw) { return BuildBiRealNet18(hw); }, 224, profile,
      /*profiling=*/false);
  const double birealnet_ms = 1e3 * ModelLatency(*interp, 3);
  std::printf("  BiRealNet (224x224): %.1f ms\n", birealnet_ms);
  report.AddResult("birealnet_224.latency_ms", birealnet_ms);
  if (!json_path.empty()) {
    const Status st = report.WriteJson(json_path);
    if (st.ok()) {
      std::printf("[json] wrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s: %s\n", json_path.c_str(),
                   st.message().c_str());
      return 1;
    }
  }
  return 0;
}
