// Mixed-resolution serving: one shape-bucketed QuickNet serving the zoo's
// multi-resolution scenarios concurrently (docs/SERVING.md,
// "Multi-resolution serving").
//
// One CompiledModel is compiled at the first requested resolution and
// bucketed at the rest (kZooInputResolutions by default: 96/160/224/320 px
// -- preview, reduced, canonical, high-detail). Two experiments:
//
//   * CLOSED LOOP, per bucket: client threads blocking on the shaped
//     Infer() of one resolution, measuring per-bucket QPS and latency
//     through the full serving path (shape routing, shape-keyed batching,
//     the (bucket, batch)-keyed context pool).
//   * OPEN LOOP, mixed: Poisson arrivals whose resolution is sampled per
//     request, offered to one bounded server at `--overload=X` times the
//     measured aggregate sustainable rate -- the traffic shape bucketed
//     compilation exists for. Reports per-bucket admitted latency and the
//     batch occupancy the mixed stream still achieves.
//
// Structural assertions, LCE_CHECKed on every run (the CI perf-smoke step
// runs this bench and greps for the [check] lines):
//
//   * `weights.resident_packed_bytes` stays FLAT from the moment the base
//     model is compiled, through every bucket and batch-variant compile,
//     to the end of the run: buckets borrow the packed weights, they never
//     duplicate them.
//   * `bconv2d.fallback_unfused` stays 0: every binary convolution in
//     every bucket runs the fused pipeline -- re-deriving geometry for a
//     bucket must not silently drop any layer off the fast path.
//   * no shaped request is shape-rejected, and the resident-arena peak
//     honors max_inflight * the largest bucket's batch-variant arena.
//
// `--smoke` shrinks the run for CI (96/160 px, short wall time); `--json=`
// writes the committed BENCH_multires.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "converter/convert.h"
#include "graph/compiled_model.h"
#include "graph/memory_planner.h"
#include "models/builder.h"
#include "models/zoo.h"
#include "serving/server.h"
#include "telemetry/metrics.h"
#include "telemetry/run_report.h"

namespace {

using namespace lce;

std::int64_t GaugeValue(const char* name) {
  return telemetry::MetricsRegistry::Global().Gauge(name)->value();
}

std::int64_t CounterValue(const char* name) {
  return telemetry::MetricsRegistry::Global().Counter(name)->value();
}

std::vector<int> ParseResolutions(const std::string& csv) {
  std::vector<int> out;
  std::string cur;
  for (const char c : csv + ",") {
    if (c == ',') {
      if (!cur.empty()) out.push_back(std::atoi(cur.c_str()));
      cur.clear();
    } else {
      cur += c;
    }
  }
  return out;
}

struct BucketResult {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::int64_t requests = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace lce::bench;
  const auto profile = ParseProfile(argc, argv);
  const std::string json_path = ParseJsonPath(argc, argv);
  const bool smoke = HasFlag(argc, argv, "--smoke");
  const double seconds = std::atof(
      ParseStringFlag(argc, argv, "--seconds=", smoke ? "0.25" : "0.6")
          .c_str());
  const int pool_threads =
      std::atoi(ParseStringFlag(argc, argv, "--pool=", "1").c_str());
  const int inflight =
      std::atoi(ParseStringFlag(argc, argv, "--inflight=", "2").c_str());
  const int queue_depth =
      std::atoi(ParseStringFlag(argc, argv, "--depth=", "32").c_str());
  const int max_batch =
      std::atoi(ParseStringFlag(argc, argv, "--max-batch=", "4").c_str());
  const double overload =
      std::atof(ParseStringFlag(argc, argv, "--overload=", "1.5").c_str());

  std::vector<int> resolutions;
  const std::string res_csv = ParseStringFlag(argc, argv, "--resolutions=");
  if (!res_csv.empty()) {
    resolutions = ParseResolutions(res_csv);
  } else if (smoke) {
    resolutions = {96, 160};
  } else {
    resolutions.assign(std::begin(kZooInputResolutions),
                       std::end(kZooInputResolutions));
  }
  LCE_CHECK(!resolutions.empty());

  telemetry::RunReport report("bench_multires_serving");
  report.AddMeta("profile", ProfileName(profile));
  report.AddMetaInt("pool_threads", pool_threads);
  report.AddMetaInt("inflight", inflight);
  report.AddMetaInt("max_batch", max_batch);
  report.AddMetaInt("buckets", static_cast<int>(resolutions.size()));

  // One QuickNet-S, compiled once at the first resolution; every other
  // resolution becomes a shape bucket sharing its packed weights. The
  // bucket list goes through CompileOptions so a misconfigured resolution
  // fails here, at startup.
  const QuickNetConfig cfg = QuickNetSmallConfig();
  Graph g = BuildQuickNet(cfg, resolutions.front());
  LCE_CHECK(Convert(g).ok());
  CompileOptions copts;
  copts.num_threads = pool_threads;
  copts.kernel_profile = profile;
  copts.input_resolutions = resolutions;
  const std::int64_t fallback_before = CounterValue("bconv2d.fallback_unfused");
  std::shared_ptr<const CompiledModel> model;
  LCE_CHECK(CompiledModel::Compile(g, copts, &model).ok());
  const std::int64_t packed_resident =
      GaugeValue("weights.resident_packed_bytes");
  LCE_CHECK(model->packed_weight_bytes() > 0);

  // Per-bucket arena accounting straight from the registry buckets.
  std::vector<std::size_t> bucket_arenas;
  std::size_t max_bucket_arena = 0;
  for (const int hw : model->ShapeBucketResolutions()) {
    std::shared_ptr<const CompiledModel> bucket;
    LCE_CHECK(CompiledModel::GetOrCompileShapeBucket(model, hw, &bucket).ok());
    LCE_CHECK(bucket.get() == model.get() ||
              bucket->packed_weight_bytes() == 0);
    bucket_arenas.push_back(bucket->arena_bytes());
    max_bucket_arena = std::max(max_bucket_arena, bucket->arena_bytes());
  }
  const CrossBucketArena cross = PlanCrossBucketArena(bucket_arenas);
  std::printf(
      "=== Mixed-resolution serving: %s, %zu buckets, packed weights %.2f "
      "MiB (shared), arena high-water %.2f MiB vs unshared sum %.2f MiB "
      "===\n\n",
      cfg.name.c_str(), resolutions.size(),
      static_cast<double>(model->packed_weight_bytes()) / (1024.0 * 1024.0),
      static_cast<double>(cross.high_water) / (1024.0 * 1024.0),
      static_cast<double>(cross.unshared_sum) / (1024.0 * 1024.0));
  report.AddResult("arena.high_water_bytes",
                   static_cast<double>(cross.high_water));
  report.AddResult("arena.unshared_sum_bytes",
                   static_cast<double>(cross.unshared_sum));
  report.AddResult("weights.packed_bytes",
                   static_cast<double>(model->packed_weight_bytes()));

  serving::ServerOptions sopts;
  sopts.max_inflight = inflight;
  sopts.max_queue_depth = queue_depth;
  sopts.max_batch_size = max_batch;
  sopts.batch_timeout = std::chrono::nanoseconds{0};
  serving::Server server(model, sopts);
  LCE_CHECK(GaugeValue("weights.resident_packed_bytes") == packed_resident &&
            "server-side bucket/batch variants duplicated packed weights");

  // One canonical input per bucket, memcpy'd by the fill callbacks.
  std::map<int, std::vector<float>> inputs;
  for (const int hw : resolutions) {
    Rng rng(100 + hw);
    auto& v = inputs[hw];
    v.resize(static_cast<std::size_t>(hw) * hw * 3);
    for (auto& x : v) x = rng.Uniform();
  }
  const auto fill_for = [&inputs](int hw) {
    return [&inputs, hw](ExecutionContext& ctx) {
      const auto& v = inputs.at(hw);
      LCE_CHECK(static_cast<std::size_t>(ctx.input(0).num_elements()) ==
                    v.size() &&
                "shape routing handed a request the wrong bucket's arena");
      std::memcpy(ctx.input(0).data<float>(), v.data(),
                  v.size() * sizeof(float));
    };
  };

  // Resident-arena peak sampler for the whole benchmark.
  std::atomic<bool> stop_sampler{false};
  std::atomic<std::int64_t> arena_peak{0};
  std::thread sampler([&] {
    auto* gauge = telemetry::MetricsRegistry::Global().Gauge(
        "serving.resident_arena_bytes");
    while (!stop_sampler.load(std::memory_order_relaxed)) {
      std::int64_t v = gauge->value();
      std::int64_t prev = arena_peak.load(std::memory_order_relaxed);
      while (v > prev && !arena_peak.compare_exchange_weak(
                             prev, v, std::memory_order_relaxed)) {
      }
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  // ---- Closed loop, per bucket --------------------------------------------
  std::printf("%8s %10s %10s %10s %10s\n", "px", "QPS", "p50-ms", "p99-ms",
              "requests");
  double aggregate_qps = 0.0;
  std::map<int, BucketResult> closed;
  for (const int hw : resolutions) {
    const int streams = inflight;
    std::vector<std::vector<double>> lat(streams);
    std::atomic<bool> stop{false};
    std::vector<std::thread> clients;
    const auto fill = fill_for(hw);
    for (int t = 0; t < streams; ++t) {
      clients.emplace_back([&, t] {
        LCE_CHECK(server.Infer(hw, fill).ok());  // warmup, not measured
        while (!stop.load(std::memory_order_relaxed)) {
          const auto t0 = std::chrono::steady_clock::now();
          const Status s = server.Infer(hw, fill);
          LCE_CHECK(s.ok() && "closed-loop shaped requests cannot fail");
          lat[t].push_back(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count());
        }
      });
    }
    const auto start = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    stop.store(true, std::memory_order_relaxed);
    for (auto& th : clients) th.join();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    BucketResult r;
    std::vector<double> all;
    for (const auto& per : lat) {
      r.requests += static_cast<std::int64_t>(per.size());
      all.insert(all.end(), per.begin(), per.end());
    }
    r.qps = wall > 0 ? static_cast<double>(r.requests) / wall : 0.0;
    if (!all.empty()) {
      r.p50_ms = profiling::Percentile(all, 0.5) * 1e3;
      r.p99_ms = profiling::Percentile(all, 0.99) * 1e3;
    }
    closed[hw] = r;
    aggregate_qps += r.qps;
    std::printf("%8d %10.1f %10.2f %10.2f %10lld\n", hw, r.qps, r.p50_ms,
                r.p99_ms, static_cast<long long>(r.requests));
    const std::string p = "closed." + std::to_string(hw) + "px";
    report.AddResult(p + ".qps", r.qps);
    report.AddResult(p + ".p50_ms", r.p50_ms);
    report.AddResult(p + ".p99_ms", r.p99_ms);
  }
  report.AddResult("closed.aggregate_qps", aggregate_qps);

  // ---- Open loop, mixed resolutions ---------------------------------------
  // Poisson arrivals; each request samples its resolution uniformly. A
  // uniform mix's sustainable rate is the HARMONIC mean of the per-bucket
  // closed-loop rates (mean service cost is the average of the buckets'
  // 1/qps, dominated by the slowest resolution); `--overload=` scales
  // that. A generous deadline keeps the focus on routing, not shedding.
  double inv_sum = 0.0;
  for (const auto& [hw, r] : closed) inv_sum += r.qps > 0 ? 1.0 / r.qps : 1.0;
  const double harmonic =
      static_cast<double>(resolutions.size()) / std::max(inv_sum, 1e-9);
  const double rate = std::max(1.0, overload * harmonic);
  double worst_p99_ms = 1.0;
  for (const auto& [hw, r] : closed) worst_p99_ms = std::max(worst_p99_ms, r.p99_ms);
  const auto deadline = std::chrono::nanoseconds(
      static_cast<std::int64_t>(worst_p99_ms * 20.0 * 1e6));
  std::printf(
      "\nopen loop: Poisson %.1f qps mixed uniformly over %zu resolutions, "
      "deadline %.0f ms\n",
      rate, resolutions.size(), worst_p99_ms * 20.0);

  const serving::ServerStats before_open = server.StatsSnapshot();
  std::vector<std::pair<int, std::shared_ptr<serving::Request>>> handles;
  Rng arrivals(13);
  const auto start = std::chrono::steady_clock::now();
  auto next = start;
  while (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
             .count() < seconds) {
    // Rng::Uniform() defaults to [-1, 1); the exponential gap and the
    // resolution pick both need [0, 1).
    const double u = arrivals.Uniform(0.0f, 1.0f);
    const double gap_s = -std::log(1.0 - u) / rate;
    next += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(gap_s));
    std::this_thread::sleep_until(next);
    const int hw = resolutions[std::min(
        resolutions.size() - 1,
        static_cast<std::size_t>(arrivals.Uniform(0.0f, 1.0f) *
                                 static_cast<double>(resolutions.size())))];
    handles.emplace_back(hw, server.Submit(hw, fill_for(hw), nullptr, deadline));
  }
  for (auto& [hw, h] : handles) h->Wait();
  stop_sampler.store(true, std::memory_order_relaxed);
  sampler.join();

  std::map<int, std::vector<double>> admitted_ms;
  std::int64_t ok = 0, not_ok = 0;
  for (const auto& [hw, h] : handles) {
    if (h->status().ok()) {
      ++ok;
      admitted_ms[hw].push_back(
          static_cast<double>(h->queue_wait_ns() + h->exec_ns()) * 1e-6);
    } else {
      ++not_ok;
    }
  }
  std::printf("  submitted %zu  ok %lld  not-ok %lld\n", handles.size(),
              static_cast<long long>(ok), static_cast<long long>(not_ok));
  for (const int hw : resolutions) {
    auto& v = admitted_ms[hw];
    if (v.empty()) continue;
    std::printf("  %4d px: %5zu admitted, p50 %.2f ms, p99 %.2f ms\n", hw,
                v.size(), profiling::Percentile(v, 0.5),
                profiling::Percentile(v, 0.99));
    const std::string p = "open." + std::to_string(hw) + "px";
    report.AddResult(p + ".admitted", static_cast<double>(v.size()));
    report.AddResult(p + ".p50_ms", profiling::Percentile(v, 0.5));
    report.AddResult(p + ".p99_ms", profiling::Percentile(v, 0.99));
  }
  const serving::ServerStats stats = server.StatsSnapshot();
  const std::int64_t batches = stats.batches_executed - before_open.batches_executed;
  const std::int64_t admitted = stats.admitted - before_open.admitted;
  const double occupancy =
      batches > 0 ? static_cast<double>(admitted) / static_cast<double>(batches)
                  : 0.0;
  std::printf("  batches %lld, mean occupancy %.2f, shape buckets %d\n",
              static_cast<long long>(batches), occupancy, stats.shape_buckets);
  report.AddResult("open.occupancy_mean", occupancy);
  report.AddResult("open.batches", static_cast<double>(batches));
  report.AddResult("shape_buckets", static_cast<double>(stats.shape_buckets));

  // ---- The contract, asserted ---------------------------------------------
  const std::int64_t packed_after = GaugeValue("weights.resident_packed_bytes");
  LCE_CHECK(packed_after == packed_resident &&
            "packed weights moved during mixed-resolution serving");
  std::printf("\n[check] packed weights flat across %d buckets: OK (%.2f MiB)\n",
              stats.shape_buckets,
              static_cast<double>(packed_after) / (1024.0 * 1024.0));
  const std::int64_t fallback =
      CounterValue("bconv2d.fallback_unfused") - fallback_before;
  LCE_CHECK(fallback == 0 &&
            "a bucket dropped a binary convolution off the fused path");
  std::printf("[check] bconv2d.fallback_unfused == 0: OK\n");
  LCE_CHECK(stats.shape_rejected == 0 &&
            "a configured resolution was shape-rejected");
  std::printf("[check] shape_rejected == 0: OK\n");
  // The arena bound covers inflight contexts of the largest bucket's
  // largest batch variant (batch lanes scale the arena linearly).
  const std::int64_t arena_bound =
      static_cast<std::int64_t>(inflight) *
      static_cast<std::int64_t>(max_bucket_arena) * max_batch;
  LCE_CHECK(arena_peak.load() <= arena_bound &&
            "resident arenas exceeded the bucketed-pool bound");
  std::printf("[check] arena peak %.2f MiB within bound %.2f MiB: OK\n",
              static_cast<double>(arena_peak.load()) / (1024.0 * 1024.0),
              static_cast<double>(arena_bound) / (1024.0 * 1024.0));
  report.AddResult("arena.peak_bytes",
                   static_cast<double>(arena_peak.load()));

  if (!json_path.empty()) {
    const Status st = report.WriteJson(json_path);
    if (st.ok()) {
      std::printf("[json] wrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s: %s\n", json_path.c_str(),
                   st.message().c_str());
      return 1;
    }
  }
  return 0;
}
