// Table 1: computational cost of float / 8-bit / binary MACs with Neon SIMD
// instructions on the Cortex-A76, from the analytical instruction cost
// model. Purely analytical (matches the paper, which derives this table from
// the Software Optimization Guide rather than measurement).
#include <cstdio>

#include "costmodel/cortex_a76.h"

int main() {
  using namespace lce::costmodel;
  std::printf("=== Table 1: MAC instruction sequences on Cortex-A76 ===\n\n");
  std::printf("%-10s %-28s %-22s %s\n", "Precision", "MAC instruction sequence",
              "Throughput (instr/cyc)", "Throughput (MACs/cycle)");

  const auto print = [](const char* precision, const MacSequenceAnalysis& a,
                        const char* throughputs) {
    std::string seq;
    for (const auto& n : a.instruction_names) {
      if (!seq.empty()) seq += ", ";
      seq += n;
    }
    std::printf("%-10s %-28s %-22s %.1f\n", precision, seq.c_str(),
                throughputs, a.macs_per_cycle);
  };

  print("float", AnalyzeMacSequence(MacPrecision::kFloat32), "2");
  print("8-bit", AnalyzeMacSequence(MacPrecision::kInt8), "2");
  print("binary", AnalyzeMacSequence(MacPrecision::kBinary), "2 / 1 / 2 / 1");

  const auto b = AnalyzeMacSequence(MacPrecision::kBinary);
  std::printf(
      "\nBinary sequence detail: %d binary MACs in %d instructions, "
      "%.0f cycles -> %.2f MACs/cycle\n",
      b.macs, b.instructions, b.cycles, b.macs_per_cycle);
  std::printf("(paper: 1024 MACs, 24 instructions, 13 cycles, ~78 MACs/cycle)\n\n");

  std::printf("Theoretical compute speedups implied by the table:\n");
  std::printf("  binary vs float: %.2fx   (paper: 9.75x)\n",
              TheoreticalSpeedup(MacPrecision::kFloat32, MacPrecision::kBinary));
  std::printf("  binary vs 8-bit: %.2fx   (paper: 2.43x)\n",
              TheoreticalSpeedup(MacPrecision::kInt8, MacPrecision::kBinary));
  std::printf("Memory traffic ratios: binary vs float %.0fx, vs 8-bit %.0fx\n",
              MemoryTrafficRatio(MacPrecision::kFloat32, MacPrecision::kBinary),
              MemoryTrafficRatio(MacPrecision::kInt8, MacPrecision::kBinary));
  return 0;
}
