// Figure 5: stacked per-layer execution-latency breakdown for
// BinaryDenseNet28 (BDN), RealToBinaryNet (R2B) and QuickNet Large (QNL).
//
// Paper shape to reproduce: BDN and R2B spend a large fraction of runtime in
// non-binary operations -- most visibly the full-precision first layer --
// while QuickNet shrinks both the first layer and the full-precision glue.
#include <cstdio>
#include <map>

#include "bench_common.h"
#include "models/zoo.h"
#include "profiling/model_profiler.h"

namespace {

using namespace lce;
using namespace lce::bench;

void BreakdownFor(const char* label, const std::function<Graph(int)>& build,
                  gemm::KernelProfile profile) {
  Graph g;
  auto interp = PrepareConverted(g, build, 224, profile, /*profiling=*/true);
  const auto prof = profiling::ProfileModel(*interp, 3);
  const double total = profiling::TotalSeconds(prof);

  double binary = 0.0, first_layer = 0.0, other_fp = 0.0;
  bool seen_first_conv = false;
  for (const auto& op : prof) {
    if (op.is_binary_op) {
      binary += op.seconds;
    } else if (!seen_first_conv && op.type == OpType::kConv2D) {
      first_layer += op.seconds;
      seen_first_conv = true;
    } else {
      other_fp += op.seconds;
    }
  }
  std::printf("%-18s total %8.1f ms | first fp conv %5.1f%% | other fp %5.1f%%"
              " | binary ops %5.1f%%\n",
              label, total * 1e3, 100 * first_layer / total,
              100 * other_fp / total, 100 * binary / total);

  // The per-layer series of the figure (execution order, cumulative).
  std::printf("  per-layer series (op, ms, cumulative ms, kind):\n");
  double cum = 0.0;
  int idx = 0;
  for (const auto& op : prof) {
    cum += op.seconds;
    // Print the costliest entries only, to keep the output readable.
    if (op.seconds * 1e3 >= 0.5) {
      std::printf("   %3d %-16s %8.2f %9.2f  %s\n", idx,
                  std::string(OpTypeName(op.type)).c_str(), op.seconds * 1e3,
                  cum * 1e3, op.is_binary_op ? "binary" : "full-precision");
    }
    ++idx;
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const auto profile = ParseProfile(argc, argv);
  std::printf(
      "=== Figure 5: per-layer latency breakdown (profile=%s) ===\n\n",
      ProfileName(profile));
  BreakdownFor("BinaryDenseNet28",
               [](int hw) { return BuildBinaryDenseNet28(hw); }, profile);
  BreakdownFor("RealToBinaryNet",
               [](int hw) { return BuildRealToBinaryNet(hw); }, profile);
  BreakdownFor("QuickNetLarge",
               [](int hw) { return BuildQuickNet(QuickNetLargeConfig(), hw); },
               profile);
  std::printf(
      "Paper shape: BDN and R2B show a heavy first fp layer and significant\n"
      "fp glue; QuickNet improves both, spending most time in binary ops.\n");
  return 0;
}
