// Figure 7 (and appendix Figure 13 with --profile=scalar): accuracy vs
// measured latency for the BNN model zoo.
//
// Paper shape to reproduce: BiRealNet, RealToBinaryNet and especially the
// QuickNet family define the accuracy/latency pareto front, while
// BinaryDenseNets and MeliusNet trade higher accuracy for distinctly worse
// latency, and the AlexNet-era models are dominated.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "models/macs.h"
#include "models/zoo.h"

int main(int argc, char** argv) {
  using namespace lce;
  using namespace lce::bench;
  const auto profile = ParseProfile(argc, argv);

  std::printf("=== Figure 7: accuracy vs latency for the model zoo "
              "(profile=%s) ===\n\n",
              ProfileName(profile));
  std::printf("%-18s %-10s %8s %12s %9s\n", "Model", "Family", "top-1",
              "latency-ms", "size-MB");

  struct Point {
    std::string name;
    float acc;
    double ms;
  };
  std::vector<Point> points;
  CsvWriter csv("fig7_pareto", "model,family,top1,latency_ms,size_mb");
  for (const auto& m : AllZooModels()) {
    Graph g;
    auto interp = PrepareConverted(g, m.build, 224, profile, false);
    const double latency = ModelLatency(*interp, 3);
    const ModelStats stats = ComputeModelStats(g);
    std::printf("%-18s %-10s %7.1f%% %12.1f %9.2f\n", m.name.c_str(),
                m.family.c_str(), m.top1_accuracy, latency * 1e3,
                stats.model_bytes / (1024.0 * 1024.0));
    char row[160];
    std::snprintf(row, sizeof(row), "%s,%s,%.1f,%.2f,%.2f", m.name.c_str(),
                  m.family.c_str(), m.top1_accuracy, latency * 1e3,
                  stats.model_bytes / (1024.0 * 1024.0));
    csv.Row(row);
    points.push_back({m.name, m.top1_accuracy, latency * 1e3});
  }

  // Report the measured pareto front (not dominated in both axes).
  std::printf("\nPareto front (no other model is both faster and more accurate):\n");
  for (const auto& p : points) {
    bool dominated = false;
    for (const auto& q : points) {
      if (q.ms < p.ms && q.acc > p.acc) dominated = true;
    }
    if (!dominated) std::printf("  %s\n", p.name.c_str());
  }
  std::printf(
      "\nPaper shape: QuickNets + BiRealNet + RealToBinaryNet on the front;\n"
      "BinaryDenseNet / MeliusNet accurate but slow; AlexNets dominated.\n");
  return 0;
}
