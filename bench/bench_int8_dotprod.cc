// Int8 dot-product tier microbenchmark (the ISSUE "break the int8
// plateau" acceptance artifact): QuickNet-stage int8 convolutions swept
// over the selectable micro-kernel tiers (gemm/int8_isa.h) and, for the
// best tier, over the weight-stationary blocking factor
// (Conv2DInt8Attrs::block_tiles).
//
// All tiers run the same fused row-tile pipeline on the same prepared
// kernels; the widened tier is the baseline the dot-product tiers must
// retire (the pre-dot fused path measured ~1.01x over legacy -- the
// plateau). Samples are interleaved round-robin across tiers so drift on
// a shared host hits every tier equally; per-tier medians are reported.
//
// The committed BENCH_int8_dotprod.json at the repo root is this report
// (Release, --json=...); the perf-smoke CI job re-runs it and asserts the
// selected tier is the best compiled-in one.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "gemm/int8_isa.h"
#include "kernels/conv2d_int8.h"
#include "telemetry/run_report.h"

namespace {

using namespace lce;
using namespace lce::bench;

// Widened baseline first: speedups below are relative to tiers[0].
std::vector<gemm::Int8Tier> SweptTiers() {
  std::vector<gemm::Int8Tier> tiers = {gemm::Int8Tier::kWidened};
  for (gemm::Int8Tier t :
       {gemm::Int8Tier::kAvx2Dot, gemm::Int8Tier::kNeonDot,
        gemm::Int8Tier::kVnni}) {
    if (gemm::Int8TierAvailable(t)) tiers.push_back(t);
  }
  return tiers;
}

struct Int8Stage {
  int hw, in_c, out_c;
};

// QuickNet's full-precision int8 stages (same shapes and quantization the
// ablation bench uses, so the numbers line up across reports).
constexpr Int8Stage kStages[] = {{56, 32, 64}, {28, 64, 64}, {14, 128, 128}};

Conv2DInt8Attrs StageAttrs(const Int8Stage& c, int block_tiles) {
  Conv2DGeometry g;
  g.in_h = g.in_w = c.hw;
  g.in_c = c.in_c;
  g.out_c = c.out_c;
  g.filter_h = g.filter_w = 3;
  g.padding = Padding::kSameZero;
  Conv2DInt8Attrs attrs;
  attrs.geo = g;
  attrs.input_quant = {0.02f, 3};
  attrs.weight_quant = {0.005f, 0};
  attrs.output_quant = {0.05f, -4};
  attrs.block_tiles = block_tiles;
  return attrs;
}

// Interleaved round-robin medians over `runs` thunks.
std::vector<double> InterleavedMedians(
    const std::vector<std::function<void()>>& runs) {
  constexpr int kWarmup = 2, kSamples = 31;
  std::vector<std::vector<double>> samples(runs.size());
  for (auto& s : samples) s.reserve(kSamples);
  for (int i = 0; i < kWarmup; ++i) {
    for (const auto& r : runs) r();
  }
  for (int s = 0; s < kSamples; ++s) {
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const double t0 = profiling::NowSeconds();
      runs[i]();
      const double t1 = profiling::NowSeconds();
      samples[i].push_back(t1 - t0);
    }
  }
  std::vector<double> medians(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    medians[i] = profiling::Median(std::move(samples[i]));
  }
  return medians;
}

}  // namespace

int main(int argc, char** argv) {
  const auto profile = ParseProfile(argc, argv);
  const std::string json_path = ParseJsonPath(argc, argv);
  const int threads =
      std::atoi(ParseStringFlag(argc, argv, "--threads=", "1").c_str());
  gemm::Context ctx(threads > 0 ? threads : 1, profile);

  telemetry::RunReport report("bench_int8_dotprod");
  report.AddMeta("profile", ProfileName(profile));
  report.AddMetaInt("threads", threads > 0 ? threads : 1);
  report.AddMeta("int8_tier_selected",
                 gemm::Int8TierName(gemm::SelectInt8Tier()));
  report.AddMeta("int8_tier_best", gemm::Int8TierName(gemm::BestInt8Tier()));

  const std::vector<gemm::Int8Tier> tiers = SweptTiers();
  const gemm::Int8Tier best = gemm::BestInt8Tier();

  std::printf("=== Int8 micro-kernel tier sweep (QuickNet int8 stages) "
              "===\n\n");
  std::printf("  %-18s", "shape");
  for (gemm::Int8Tier t : tiers) {
    std::printf(" %12s", gemm::Int8TierName(t));
  }
  std::printf(" %14s\n", "best-speedup");

  double log_best_speedup = 0.0;
  int n_shapes = 0;
  for (const Int8Stage& c : kStages) {
    Rng rng(c.hw + c.in_c);
    Tensor in(DataType::kInt8, Shape{1, c.hw, c.hw, c.in_c});
    FillInt8(in, rng);
    std::vector<std::int8_t> w(static_cast<std::size_t>(c.out_c) * 9 *
                               c.in_c);
    for (auto& v : w) v = rng.Int8(-127, 127);
    const Conv2DInt8Attrs attrs = StageAttrs(c, /*block_tiles=*/64);
    Conv2DInt8 op(w.data(), attrs);
    Tensor out(DataType::kInt8,
               Shape{1, attrs.geo.out_h(), attrs.geo.out_w(), c.out_c});

    std::vector<std::function<void()>> runs;
    for (gemm::Int8Tier t : tiers) {
      runs.push_back([&, t] {
        gemm::SetInt8TierOverrideForTest(static_cast<int>(t));
        op.Run(in, out, ctx);
      });
    }
    const std::vector<double> ms = InterleavedMedians(runs);
    gemm::SetInt8TierOverrideForTest(0);

    char shape[64];
    std::snprintf(shape, sizeof(shape), "%dx%dx%d-%d", c.hw, c.hw, c.in_c,
                  c.out_c);
    std::printf("  %-18s", shape);
    double best_ms = ms[0];
    for (std::size_t i = 0; i < tiers.size(); ++i) {
      std::printf(" %10.3fms", ms[i] * 1e3);
      report.AddResult(std::string("int8_dotprod.") +
                           gemm::Int8TierName(tiers[i]) + "_ms." + shape,
                       ms[i] * 1e3);
      if (i > 0) {
        report.AddResult(std::string("int8_dotprod.") +
                             gemm::Int8TierName(tiers[i]) +
                             "_vs_widened." + shape,
                         ms[i] > 0 ? ms[0] / ms[i] : 0.0);
      }
      if (ms[i] < best_ms) best_ms = ms[i];
    }
    const double best_speedup = best_ms > 0 ? ms[0] / best_ms : 0.0;
    std::printf(" %13.2fx\n", best_speedup);
    report.AddResult(std::string("int8_dotprod.best_vs_widened.") + shape,
                     best_speedup);
    if (best_speedup > 0) {
      log_best_speedup += std::log(best_speedup);
      ++n_shapes;
    }
  }
  const double geomean =
      n_shapes > 0 ? std::exp(log_best_speedup / n_shapes) : 0.0;
  std::printf("\n  geomean best-tier vs widened: %.2fx\n\n", geomean);
  report.AddResult("int8_dotprod.geomean_best_vs_widened", geomean);

  // Weight-stationary blocking sweep for the best tier: how many row
  // tiles share one residency of the packed RHS panels before it is
  // streamed again.
  std::printf("=== Weight-stationary blocking sweep (tier=%s) ===\n\n",
              gemm::Int8TierName(best));
  const int kBlockTiles[] = {16, 32, 64, 128};
  std::printf("  %-18s", "shape");
  for (int bt : kBlockTiles) std::printf("     bt=%-3d ", bt);
  std::printf("\n");
  for (const Int8Stage& c : kStages) {
    Rng rng(c.hw + c.in_c);
    Tensor in(DataType::kInt8, Shape{1, c.hw, c.hw, c.in_c});
    FillInt8(in, rng);
    std::vector<std::int8_t> w(static_cast<std::size_t>(c.out_c) * 9 *
                               c.in_c);
    for (auto& v : w) v = rng.Int8(-127, 127);

    std::vector<std::unique_ptr<Conv2DInt8>> ops;
    std::vector<std::function<void()>> runs;
    Tensor out(DataType::kInt8,
               Shape{1, c.hw, c.hw, c.out_c});
    for (int bt : kBlockTiles) {
      ops.push_back(
          std::make_unique<Conv2DInt8>(w.data(), StageAttrs(c, bt)));
      Conv2DInt8* op = ops.back().get();
      runs.push_back([&, op] { op->Run(in, out, ctx); });
    }
    const std::vector<double> ms = InterleavedMedians(runs);

    char shape[64];
    std::snprintf(shape, sizeof(shape), "%dx%dx%d-%d", c.hw, c.hw, c.in_c,
                  c.out_c);
    std::printf("  %-18s", shape);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      std::printf(" %8.3fms ", ms[i] * 1e3);
      char key[96];
      std::snprintf(key, sizeof(key), "int8_dotprod.block_tiles_%d_ms.%s",
                    kBlockTiles[i], shape);
      report.AddResult(key, ms[i] * 1e3);
    }
    std::printf("\n");
  }
  std::printf("\n");

  if (!json_path.empty()) {
    const Status s = report.WriteJson(json_path);
    if (s.ok()) {
      std::printf("wrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s: %s\n", json_path.c_str(),
                   s.message().c_str());
      return 1;
    }
  }
  return 0;
}
