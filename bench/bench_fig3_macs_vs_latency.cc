// Figure 3 (and appendix Figure 12 with --profile=scalar): MACs vs latency
// for a large range of convolutions in binary, int8 and float32, with
// log-log least-squares regression lines.
//
// Paper shape to reproduce: an approximately linear (slope ~1 in log-log)
// relationship between MACs and latency in each precision, with substantial
// per-convolution deviations -- i.e. no uniform speedup.
//
// By default the sweep skips convolutions above 400 MMACs so the whole
// bench suite stays fast; pass --full for the complete paper grid.
#include <cmath>
#include <cstdio>
#include <limits>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace lce;
  using namespace lce::bench;
  const auto profile = ParseProfile(argc, argv);
  const std::int64_t cap = HasFlag(argc, argv, "--full")
                               ? std::numeric_limits<std::int64_t>::max()
                               : 400'000'000;
  gemm::Context ctx(1, profile);

  std::printf(
      "=== Figure 3: MACs vs latency across conv dimensions (profile=%s) "
      "===\n\n",
      ProfileName(profile));
  std::printf("%4s %4s %2s %10s %12s %12s %12s %9s %9s\n", "hw", "ch", "k",
              "MMACs", "float (ms)", "int8 (ms)", "binary (ms)", "bin/f32",
              "bin/i8");

  const auto rows = RunConvSweep(ctx, cap);
  CsvWriter csv("fig3_macs_vs_latency",
                "hw,channels,kernel,macs,float_ms,int8_ms,binary_ms");
  std::vector<double> log_macs, log_f, log_q, log_b;
  for (const auto& r : rows) {
    std::printf("%4d %4d %2d %10.2f %12.4f %12.4f %12.4f %8.1fx %8.1fx\n",
                r.dims.hw, r.dims.channels, r.dims.kernel, r.dims.macs() / 1e6,
                r.float_ms, r.int8_ms, r.binary_ms, r.float_ms / r.binary_ms,
                r.int8_ms / r.binary_ms);
    char row[160];
    std::snprintf(row, sizeof(row), "%d,%d,%d,%lld,%.4f,%.4f,%.4f", r.dims.hw,
                  r.dims.channels, r.dims.kernel,
                  static_cast<long long>(r.dims.macs()), r.float_ms,
                  r.int8_ms, r.binary_ms);
    csv.Row(row);
    log_macs.push_back(std::log10(static_cast<double>(r.dims.macs())));
    log_f.push_back(std::log10(r.float_ms));
    log_q.push_back(std::log10(r.int8_ms));
    log_b.push_back(std::log10(r.binary_ms));
  }

  std::printf("\nLog-log least-squares fits (latency ~ MACs^slope):\n");
  const auto ff = profiling::FitLeastSquares(log_macs, log_f);
  const auto fq = profiling::FitLeastSquares(log_macs, log_q);
  const auto fb = profiling::FitLeastSquares(log_macs, log_b);
  std::printf("  float32: slope %.2f, R^2 %.3f\n", ff.slope, ff.r_squared);
  std::printf("  int8   : slope %.2f, R^2 %.3f\n", fq.slope, fq.r_squared);
  std::printf("  binary : slope %.2f, R^2 %.3f\n", fb.slope, fb.r_squared);
  std::printf(
      "\nPaper: approximately linear relationship in each precision\n"
      "(slope ~1, high R^2), with clear per-convolution deviations.\n");
  return 0;
}
