// Table 2 (and appendix Table 5 with --profile=scalar): speedup of binarized
// convolutions vs float32 and int8 across the Figure 3 sweep -- mean,
// latency-weighted mean (weights = full-precision latency) and range.
//
// Paper (Pixel 1): 1 vs 32: mean 15.0x, weighted 15.1x, range 8.5-18.5x;
//                  1 vs 8 : mean 10.8x, weighted 11.6x, range 6.1-13.4x.
// Shape to reproduce: binary is uniformly faster, with a wide (~2x) spread
// across convolution dimensions; absolute factors are platform-dependent
// (paper section 4.1 makes this caveat explicitly).
#include <cstdio>
#include <limits>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace lce;
  using namespace lce::bench;
  const auto profile = ParseProfile(argc, argv);
  const std::int64_t cap = HasFlag(argc, argv, "--full")
                               ? std::numeric_limits<std::int64_t>::max()
                               : 400'000'000;
  gemm::Context ctx(1, profile);
  const auto rows = RunConvSweep(ctx, cap);

  std::vector<double> vs_float, vs_int8, float_weights, int8_weights;
  for (const auto& r : rows) {
    vs_float.push_back(r.float_ms / r.binary_ms);
    vs_int8.push_back(r.int8_ms / r.binary_ms);
    float_weights.push_back(r.float_ms);
    int8_weights.push_back(r.int8_ms);
  }

  std::printf(
      "=== Table 2: binarization speedups over the conv sweep (profile=%s, "
      "%zu convolutions) ===\n\n",
      ProfileName(profile), rows.size());
  std::printf("%-10s %8s %15s %18s\n", "Precision", "Mean", "Weighted mean",
              "Range");
  const auto print = [](const char* name, const std::vector<double>& s,
                        const std::vector<double>& w) {
    const auto mm = profiling::Range(s);
    std::printf("%-10s %7.1fx %14.1fx %10.1f-%.1fx\n", name,
                profiling::Mean(s), profiling::WeightedMean(s, w), mm.min,
                mm.max);
  };
  print("1 vs 32", vs_float, float_weights);
  print("1 vs 8", vs_int8, int8_weights);
  std::printf(
      "\nPaper (Pixel 1): 1 vs 32 mean 15.0x weighted 15.1x range 8.5-18.5x;\n"
      "                 1 vs 8  mean 10.8x weighted 11.6x range 6.1-13.4x.\n");
  return 0;
}
