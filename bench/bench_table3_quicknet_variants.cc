// Table 3: the three QuickNet variants -- layer/filter configurations,
// published ImageNet accuracies, plus this repo's measured statistics
// (MACs, parameters, converted model size, latency).
#include <cstdio>

#include "bench_common.h"
#include "models/macs.h"
#include "models/zoo.h"
#include "telemetry/run_report.h"

int main(int argc, char** argv) {
  using namespace lce;
  using namespace lce::bench;
  const auto profile = ParseProfile(argc, argv);
  const std::string json_path = ParseJsonPath(argc, argv);
  telemetry::RunReport report("bench_table3_quicknet_variants");
  report.AddMeta("profile", ProfileName(profile));
  report.AddMetaInt("input_hw", 224);

  std::printf("=== Table 3: QuickNet variants (profile=%s) ===\n\n",
              ProfileName(profile));
  std::printf("%-15s %-14s %-20s %6s %6s %9s %8s %9s %9s %10s\n", "Model", "N",
              "k", "train", "eval", "bin-MMAC", "fp-MMAC", "params-M",
              "size-MB", "latency-ms");

  for (const auto& cfg : {QuickNetSmallConfig(), QuickNetMediumConfig(),
                          QuickNetLargeConfig()}) {
    Graph training = BuildQuickNet(cfg, 224);
    const ModelStats stats = ComputeModelStats(training);

    Graph g;
    auto interp = PrepareConverted(
        g, [&cfg](int hw) { return BuildQuickNet(cfg, hw); }, 224, profile,
        /*profiling=*/false);
    const ModelStats converted_stats = ComputeModelStats(g);
    const double latency = ModelLatency(*interp, 3);
    report.AddResult(cfg.name + ".latency_ms", latency * 1e3);
    report.AddResult(cfg.name + ".binary_mmacs", stats.binary_macs / 1e6);
    report.AddResult(cfg.name + ".float_mmacs", stats.float_macs / 1e6);
    report.AddResult(cfg.name + ".params_m", stats.params / 1e6);
    report.AddResult(cfg.name + ".size_mb",
                     converted_stats.model_bytes / (1024.0 * 1024.0));

    char layers[32], filters[48];
    std::snprintf(layers, sizeof(layers), "(%d,%d,%d,%d)", cfg.layers[0],
                  cfg.layers[1], cfg.layers[2], cfg.layers[3]);
    std::snprintf(filters, sizeof(filters), "(%d,%d,%d,%d)", cfg.filters[0],
                  cfg.filters[1], cfg.filters[2], cfg.filters[3]);
    std::printf("%-15s %-14s %-20s %5.1f%% %5.1f%% %9.1f %8.1f %9.2f %9.2f %10.1f\n",
                cfg.name.c_str(), layers, filters, cfg.train_accuracy,
                cfg.eval_accuracy, stats.binary_macs / 1e6,
                stats.float_macs / 1e6, stats.params / 1e6,
                converted_stats.model_bytes / (1024.0 * 1024.0),
                latency * 1e3);
  }
  std::printf(
      "\nAccuracies are the paper's Table 3 (ImageNet training is out of\n"
      "scope here); MACs/params/size/latency are measured from this repo's\n"
      "implementation. Shape: latency and MACs grow Small < Medium < Large.\n");
  if (!json_path.empty()) {
    const Status st = report.WriteJson(json_path);
    if (st.ok()) {
      std::printf("[json] wrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s: %s\n", json_path.c_str(),
                   st.message().c_str());
      return 1;
    }
  }
  return 0;
}
