// Figure 8 / Figure 9 (and appendix Figure 14 with --profile=scalar): the
// latency impact of full-precision shortcuts on a binarized ResNet18.
//
//  (A) shortcuts in every block, incl. the downsampling blocks' extra
//      full-precision pointwise convolution (Figure 9 right);
//  (B) shortcuts in regular blocks only;
//  (C) no shortcuts anywhere.
//
// Paper shape to reproduce: regular-block shortcuts cost little (B ~ C);
// the downsampling pointwise convolutions carry a substantial cost (A > B).
#include <array>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "converter/convert.h"
#include "core/random.h"
#include "graph/interpreter.h"
#include "models/builder.h"
#include "models/zoo.h"
#include "profiling/bench_utils.h"
#include "profiling/model_profiler.h"

namespace {

using namespace lce;
using namespace lce::bench;

// Block-level measurements, which is what the paper's Figure 8 actually
// plots: one binarized layer (a) without shortcut, (b) with a regular
// shortcut, (c) as a downsampling block with the fp pointwise-conv shortcut
// (the three diagrams of Figure 9).
std::unique_ptr<Interpreter> MakeBlock(int hw, int channels, bool shortcut,
                                       bool downsample,
                                       gemm::KernelProfile profile,
                                       std::unique_ptr<Graph>& storage) {
  storage = std::make_unique<Graph>();
  Graph& g = *storage;
  ModelBuilder b(g, 97 + channels + (shortcut ? 1 : 0) + (downsample ? 2 : 0));
  int x = b.Input(hw, hw, channels);
  const int out_c = downsample ? 2 * channels : channels;
  const int stride = downsample ? 2 : 1;
  int y = b.BinaryConv(x, out_c, 3, stride, Padding::kSameZero);
  y = b.BatchNorm(y);
  if (shortcut) {
    int sc = x;
    if (downsample) {
      sc = b.AvgPool(sc, 2, 2, Padding::kValid);
      sc = b.Conv(sc, out_c, 1, 1, Padding::kValid);
      sc = b.BatchNorm(sc);
    }
    y = b.Add(y, sc);
  }
  // A trailing binarized consumer so that, without a shortcut, the block
  // chains bitpacked (matching the figure's "input and output binary").
  y = b.BinaryConv(y, out_c, 3, 1, Padding::kSameZero);
  y = b.BatchNorm(y);
  g.MarkOutput(y);
  LCE_CHECK(Convert(g).ok());
  InterpreterOptions opts;
  opts.kernel_profile = profile;
  auto interp = std::make_unique<Interpreter>(g, opts);
  LCE_CHECK(interp->Prepare().ok());
  Rng rng(5);
  Tensor in = interp->input(0);
  for (std::int64_t i = 0; i < in.num_elements(); ++i) {
    in.data<float>()[i] = rng.Uniform();
  }
  interp->Invoke();  // warmup
  return interp;
}

// Measures the four block variants interleaved round-robin so host drift
// cancels; returns per-variant median seconds.
std::array<double, 4> BlockLatencies(int hw, int channels,
                                     gemm::KernelProfile profile) {
  std::unique_ptr<Graph> g[4];
  std::unique_ptr<Interpreter> interp[4];
  const bool config[4][2] = {
      {false, false}, {true, false}, {false, true}, {true, true}};
  for (int v = 0; v < 4; ++v) {
    interp[v] = MakeBlock(hw, channels, config[v][0], config[v][1], profile,
                          g[v]);
  }
  std::vector<double> samples[4];
  for (int round = 0; round < 25; ++round) {
    for (int v = 0; v < 4; ++v) {
      const double t0 = profiling::NowSeconds();
      interp[v]->Invoke();
      samples[v].push_back(profiling::NowSeconds() - t0);
    }
  }
  return {profiling::Median(samples[0]), profiling::Median(samples[1]),
          profiling::Median(samples[2]), profiling::Median(samples[3])};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lce;
  using namespace lce::bench;
  const auto profile = ParseProfile(argc, argv);

  std::printf("=== Figure 8: shortcut ablation on binarized ResNet18 "
              "(profile=%s) ===\n\n",
              ProfileName(profile));

  // --- Block-level comparison (the paper's Figure 8/9 unit of analysis).
  std::printf("Block-level (two binarized 3x3 layers, Figure 9 shapes):\n");
  std::printf("%-40s %12s %10s\n", "Block type", "latency-ms", "overhead");
  for (const auto& [hw, ch] : {std::pair{28, 128}, std::pair{14, 256}}) {
    const auto t = BlockLatencies(hw, ch, profile);
    const double none = t[0], regular = t[1], down_no_sc = t[2], down_sc = t[3];
    std::printf("  %dx%dx%d  no shortcut %27.3f %9s\n", hw, hw, ch,
                none * 1e3, "-");
    std::printf("  %dx%dx%d  regular shortcut %22.3f %+8.1f%%\n", hw, hw, ch,
                regular * 1e3, 100.0 * (regular - none) / none);
    std::printf("  %dx%dx%d  downsample, no shortcut %15.3f %9s\n", hw, hw,
                ch, down_no_sc * 1e3, "-");
    std::printf("  %dx%dx%d  downsample + fp pointwise sc %10.3f %+8.1f%%\n",
                hw, hw, ch, down_sc * 1e3,
                100.0 * (down_sc - down_no_sc) / down_no_sc);
  }
  std::printf("\nFull-model comparison:\n");
  std::printf("%-34s %12s %14s %14s\n", "Variant", "latency-ms", "fp Add ms",
              "fp Conv2D ms");

  const struct {
    const char* label;
    ShortcutMode mode;
  } variants[] = {
      {"(A) shortcuts everywhere", ShortcutMode::kAllBlocks},
      {"(B) regular blocks only", ShortcutMode::kRegularOnly},
      {"(C) no shortcuts", ShortcutMode::kNone},
  };

  // Interleave the three variants round-robin (host drift cancels).
  std::unique_ptr<Graph> graphs[3];
  std::unique_ptr<Interpreter> interps[3];
  std::vector<std::vector<lce::OpProfile>> profiles(3);
  for (int v = 0; v < 3; ++v) {
    auto& g = graphs[v];
    g = std::make_unique<Graph>(BuildBinarizedResNet18(variants[v].mode, 224));
    LCE_CHECK(Convert(*g).ok());
    InterpreterOptions opts;
    opts.kernel_profile = profile;
    opts.enable_profiling = true;
    interps[v] = std::make_unique<Interpreter>(*g, opts);
    LCE_CHECK(interps[v]->Prepare().ok());
    Rng rng(1);
    Tensor in = interps[v]->input(0);
    for (std::int64_t i = 0; i < in.num_elements(); ++i) {
      in.data<float>()[i] = rng.Uniform();
    }
    interps[v]->Invoke();  // warmup
  }
  std::vector<double> totals[3];
  for (int round = 0; round < 11; ++round) {
    for (int v = 0; v < 3; ++v) {
      interps[v]->Invoke();
      totals[v].push_back(profiling::TotalSeconds(interps[v]->profile()));
      if (round == 5) profiles[v] = interps[v]->profile();  // sample breakdown
    }
  }
  double latency_a = 0.0, latency_b = 0.0, latency_c = 0.0;
  for (int v = 0; v < 3; ++v) {
    const double total = profiling::Median(totals[v]);
    double add_ms = 0.0, conv_ms = 0.0;
    for (const auto& op : profiles[v]) {
      if (op.type == OpType::kAdd) add_ms += op.seconds;
      if (op.type == OpType::kConv2D) conv_ms += op.seconds;
    }
    std::printf("%-34s %12.1f %14.2f %14.2f\n", variants[v].label,
                total * 1e3, add_ms * 1e3, conv_ms * 1e3);
    if (variants[v].mode == ShortcutMode::kAllBlocks) latency_a = total;
    if (variants[v].mode == ShortcutMode::kRegularOnly) latency_b = total;
    if (variants[v].mode == ShortcutMode::kNone) latency_c = total;
  }

  std::printf("\nRegular-block shortcut overhead (B vs C): +%.1f%%\n",
              100.0 * (latency_b - latency_c) / latency_c);
  std::printf("Downsample shortcut overhead    (A vs B): +%.1f%%\n",
              100.0 * (latency_a - latency_b) / latency_b);
  std::printf(
      "\nPaper shape: the regular-block impact is small; the downsampling\n"
      "blocks' extra fp pointwise convolution is the substantial cost.\n");
  return 0;
}
