// Three-way BConv2D execution-mode ablation on the QuickNet-S 3x3 shapes:
//
//   im2col    -- full-image bitpacked im2col + packed BGEMM + full-image
//                accumulator (the legacy pipeline, forced unfused);
//   indirect  -- per-call pointer indirection + scalar indirect BGEMM into
//                a full-image accumulator (the unfused indirect baseline);
//   fused     -- the production path: cached indirection offsets + row-tile
//                pipeline (gather-pack -> SIMD BGEMM -> padding correction
//                -> output transform per cache-resident tile).
//
// `--json=<path>` writes a RunReport with per-shape milliseconds and the
// fused-vs-im2col speedups; the committed BENCH_bconv_fusion.json at the
// repo root is this report for the default single-threaded run.
#include <array>
#include <cmath>
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "core/bitpack.h"
#include "kernels/bconv2d.h"
#include "telemetry/metrics.h"
#include "telemetry/run_report.h"

namespace {

using namespace lce;
using namespace lce::bench;

enum class ExecMode { kIm2Col, kIndirectUnfused, kFusedIndirect };

// Measures all three execution modes of one shape with round-robin
// interleaved single-run samples: slow noise (frequency drift, other
// tenants on the core) hits every mode equally instead of corrupting
// whichever mode happened to be on the clock, which matters for the
// mode-vs-mode ratios this ablation exists to report. Returns per-mode
// median seconds indexed by ExecMode.
std::array<double, 3> BConvModeLatencies(int hw, int channels, int kernel,
                                         gemm::Context& ctx) {
  Conv2DGeometry g;
  g.in_h = g.in_w = hw;
  g.in_c = g.out_c = channels;
  g.filter_h = g.filter_w = kernel;
  g.padding = kernel == 1 ? Padding::kValid : Padding::kSameOne;
  Rng rng(hw + channels + kernel);
  Tensor input_f(DataType::kFloat32, Shape{1, hw, hw, channels});
  FillSigns(input_f, rng);
  Tensor input(DataType::kBitpacked, input_f.shape());
  BitpackTensor(input_f, input);
  std::vector<float> w(static_cast<std::size_t>(channels) * kernel * kernel *
                       channels);
  for (auto& v : w) v = rng.Sign();

  std::vector<std::unique_ptr<BConv2D>> ops;
  Tensor out(DataType::kFloat32, Shape{1, g.out_h(), g.out_w(), channels});
  for (ExecMode mode : {ExecMode::kIm2Col, ExecMode::kIndirectUnfused,
                        ExecMode::kFusedIndirect}) {
    BConv2DAttrs attrs;
    attrs.geo = g;
    attrs.output_type = BConvOutputType::kFloat;
    attrs.use_indirect_bgemm = mode != ExecMode::kIm2Col;
    attrs.force_unfused = mode != ExecMode::kFusedIndirect;
    ops.push_back(std::make_unique<BConv2D>(w.data(), attrs));
  }
  constexpr int kWarmup = 2, kSamples = 41;
  std::array<std::vector<double>, 3> samples;
  for (int m = 0; m < 3; ++m) {
    for (int i = 0; i < kWarmup; ++i) ops[m]->Run(input, out, ctx);
    samples[m].reserve(kSamples);
  }
  for (int s = 0; s < kSamples; ++s) {
    for (int m = 0; m < 3; ++m) {
      const double t0 = profiling::NowSeconds();
      ops[m]->Run(input, out, ctx);
      samples[m].push_back(profiling::NowSeconds() - t0);
    }
  }
  return {profiling::Median(std::move(samples[0])),
          profiling::Median(std::move(samples[1])),
          profiling::Median(std::move(samples[2]))};
}

}  // namespace

int main(int argc, char** argv) {
  const auto profile = ParseProfile(argc, argv);
  const std::string json_path = ParseJsonPath(argc, argv);
  const int threads = std::atoi(
      ParseStringFlag(argc, argv, "--threads=", "1").c_str());
  gemm::Context ctx(threads > 0 ? threads : 1, profile);

  telemetry::RunReport report("bench_ablation_im2col");
  report.AddMeta("profile", ProfileName(profile));
  report.AddMetaInt("threads", ctx.num_threads());

  std::printf(
      "=== Ablation: im2col BGEMM vs unfused indirect vs fused tiled "
      "(profile=%s, threads=%d) ===\n\n",
      ProfileName(profile), ctx.num_threads());
  std::printf("%-22s %12s %13s %10s %17s\n", "Convolution", "im2col (ms)",
              "indirect (ms)", "fused (ms)", "fused vs im2col");
  CsvWriter csv("ablation_bconv_fusion",
                "hw,channels,kernel,im2col_ms,indirect_ms,fused_ms,"
                "fused_speedup_vs_im2col");
  struct Case {
    int hw, ch, k;
  };
  // The four QuickNet-S binary 3x3 stages (sections at 56/28/14/7 spatial
  // with 32/64/256/512 filters), plus two 1x1 shapes showing the pointwise
  // fast path is mode-independent.
  double log_speedup_3x3 = 0.0;
  int n_3x3 = 0;
  for (const Case& c : {Case{56, 32, 3}, Case{28, 64, 3}, Case{14, 256, 3},
                        Case{7, 512, 3}, Case{28, 64, 1}, Case{14, 256, 1}}) {
    const auto lat = BConvModeLatencies(c.hw, c.ch, c.k, ctx);
    const double im2col = lat[static_cast<int>(ExecMode::kIm2Col)];
    const double indirect = lat[static_cast<int>(ExecMode::kIndirectUnfused)];
    const double fused = lat[static_cast<int>(ExecMode::kFusedIndirect)];
    const double speedup = fused > 0 ? im2col / fused : 0.0;
    std::printf("%dx%dx%dx%d k=%d %*s %10.3f %13.3f %10.3f %15.2fx\n", c.hw,
                c.hw, c.ch, c.ch, c.k, 2, "", im2col * 1e3, indirect * 1e3,
                fused * 1e3, speedup);
    char row[160];
    std::snprintf(row, sizeof(row), "%d,%d,%d,%.6f,%.6f,%.6f,%.3f", c.hw, c.ch,
                  c.k, im2col * 1e3, indirect * 1e3, fused * 1e3, speedup);
    csv.Row(row);
    char key[64];
    std::snprintf(key, sizeof(key), "%dx%dx%d_k%d", c.hw, c.hw, c.ch, c.k);
    report.AddResult(std::string("im2col_ms.") + key, im2col * 1e3);
    report.AddResult(std::string("indirect_ms.") + key, indirect * 1e3);
    report.AddResult(std::string("fused_ms.") + key, fused * 1e3);
    report.AddResult(std::string("fused_speedup_vs_im2col.") + key, speedup);
    if (c.k == 3 && speedup > 0) {
      log_speedup_3x3 += std::log(speedup);
      ++n_3x3;
    }
  }
  if (n_3x3 > 0) {
    const double geomean = std::exp(log_speedup_3x3 / n_3x3);
    std::printf("\ngeomean fused speedup over the 3x3 stages: %.2fx\n",
                geomean);
    report.AddResult("fused_speedup_vs_im2col.geomean_3x3", geomean);
  }
  std::printf(
      "\nim2col pays the patch copy and a full-image accumulator round trip;\n"
      "unfused indirect trades the copy for per-call pointer setup and a\n"
      "scalar gather kernel; the fused row-tile pipeline keeps the SIMD\n"
      "micro-kernels, gathers through prepare-time offsets, and never leaves\n"
      "the cache between BGEMM and output transform. 1x1 shapes skip patch\n"
      "materialization in every mode.\n");
  if (!json_path.empty()) {
    const Status s = report.WriteJson(json_path);
    if (s.ok()) {
      std::printf("wrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s: %s\n", json_path.c_str(),
                   s.message().c_str());
      return 1;
    }
  }
  return 0;
}
