// Ablation: im2col + packed BGEMM vs indirect BGEMM (pointer indirection,
// the alternative kernel family in the upstream LCE codebase), plus the
// 1x1 fast path that skips patch materialization entirely.
#include <cstdio>

#include "bench_common.h"
#include "core/bitpack.h"
#include "kernels/bconv2d.h"

namespace {

using namespace lce;
using namespace lce::bench;

double BConvLatency(int hw, int channels, int kernel, bool indirect,
                    gemm::Context& ctx) {
  Conv2DGeometry g;
  g.in_h = g.in_w = hw;
  g.in_c = g.out_c = channels;
  g.filter_h = g.filter_w = kernel;
  g.padding = kernel == 1 ? Padding::kValid : Padding::kSameOne;
  Rng rng(hw + channels + kernel);
  Tensor input_f(DataType::kFloat32, Shape{1, hw, hw, channels});
  FillSigns(input_f, rng);
  Tensor input(DataType::kBitpacked, input_f.shape());
  BitpackTensor(input_f, input);
  std::vector<float> w(static_cast<std::size_t>(channels) * kernel * kernel *
                       channels);
  for (auto& v : w) v = rng.Sign();
  BConv2DAttrs attrs;
  attrs.geo = g;
  attrs.output_type = BConvOutputType::kFloat;
  attrs.use_indirect_bgemm = indirect;
  BConv2D op(w.data(), attrs);
  Tensor out(DataType::kFloat32, Shape{1, g.out_h(), g.out_w(), channels});
  return profiling::MeasureMedianSeconds([&] { op.Run(input, out, ctx); }, 2,
                                         11, 50, 0.1);
}

}  // namespace

int main(int argc, char** argv) {
  const auto profile = ParseProfile(argc, argv);
  gemm::Context ctx(1, profile);

  std::printf("=== Ablation: im2col BGEMM vs indirect BGEMM (profile=%s) "
              "===\n\n",
              ProfileName(profile));
  std::printf("%-24s %14s %15s %10s\n", "Convolution", "im2col (ms)",
              "indirect (ms)", "ratio");
  struct Case {
    int hw, ch, k;
  };
  for (const Case& c : {Case{56, 64, 3}, Case{28, 128, 3}, Case{14, 256, 3},
                        Case{7, 256, 3}, Case{28, 128, 1}, Case{14, 256, 1}}) {
    const double a = BConvLatency(c.hw, c.ch, c.k, /*indirect=*/false, ctx);
    const double b = BConvLatency(c.hw, c.ch, c.k, /*indirect=*/true, ctx);
    std::printf("%dx%dx%dx%d k=%d %*s %14.3f %15.3f %9.2fx\n", c.hw, c.hw,
                c.ch, c.ch, c.k, 2, "", a * 1e3, b * 1e3, b / a);
  }
  std::printf(
      "\nThe packed-BGEMM path pays the im2col copy but gains the tiled\n"
      "SIMD kernel; indirect avoids the copy at the cost of scalar gather\n"
      "loops. For 1x1 convolutions the im2col path is free (identity).\n");
  return 0;
}
