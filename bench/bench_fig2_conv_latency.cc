// Figure 2 (and appendix Figure 11 with --profile=scalar): latency of the
// four main ResNet18 convolutions (A-D) in binary vs float32 vs int8.
//
// Paper shape to reproduce: binary is ~an order of magnitude faster than
// float (12-17x on Pixel 1) and clearly faster than int8 (9-12x), with the
// largest gains on the layers with the most channels (C, D).
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace lce;
  using namespace lce::bench;
  const auto profile = ParseProfile(argc, argv);
  gemm::Context ctx(1, profile);

  std::printf("=== Figure 2: conv latency by precision (profile=%s) ===\n\n",
              ProfileName(profile));
  std::printf("%-18s %10s %12s %12s %12s %9s %9s\n", "Convolution", "MMACs",
              "float (ms)", "int8 (ms)", "binary (ms)", "bin/f32", "bin/i8");
  CsvWriter csv("fig2_conv_latency",
                "conv,mmacs,float_ms,int8_ms,binary_ms");

  for (const auto& [name, dims] : ResNet18Convs()) {
    ConvBench f = MakeFloatConv(dims, ctx);
    ConvBench q = MakeInt8Conv(dims, ctx);
    ConvBench b = MakeBinaryConv(dims, ctx);
    const double tf = profiling::MeasureMedianSeconds(f.run);
    const double tq = profiling::MeasureMedianSeconds(q.run);
    const double tb = profiling::MeasureMedianSeconds(b.run);
    std::printf("%-18s %10.1f %12.3f %12.3f %12.3f %8.1fx %8.1fx\n",
                name.c_str(), dims.macs() / 1e6, tf * 1e3, tq * 1e3, tb * 1e3,
                tf / tb, tq / tb);
    char row[160];
    std::snprintf(row, sizeof(row), "%s,%.2f,%.4f,%.4f,%.4f", name.c_str(),
                  dims.macs() / 1e6, tf * 1e3, tq * 1e3, tb * 1e3);
    csv.Row(row);
  }
  std::printf(
      "\nPaper (Pixel 1): binary speedups 12-17x vs float, 9-12x vs int8,\n"
      "largest gains in the layers with the most channels.\n");
  return 0;
}
