// Ablation: multi-threaded inference scaling. Multi-threading is the
// capability the paper calls out as missing from DaBNN ("multi-threaded
// inference is not supported"); LCE inherits it from the Ruy-style
// context. We measure BGEMM-dominated convolutions and a full model across
// thread counts.
//
// Note: on a single-hardware-core host the expected result is *no* speedup
// (threads just add synchronization cost); on multi-core hosts the binary
// GEMM scales with cores. The harness reports whatever the machine gives.
#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "models/zoo.h"

int main(int argc, char** argv) {
  using namespace lce;
  using namespace lce::bench;
  const auto profile = ParseProfile(argc, argv);

  std::printf("=== Ablation: thread scaling (profile=%s, hardware threads: "
              "%u) ===\n\n",
              ProfileName(profile), std::thread::hardware_concurrency());
  std::printf("%-22s %12s %12s %12s\n", "Workload", "1 thread", "2 threads",
              "4 threads");

  // Convolution-level scaling.
  for (const auto& [name, dims] : ResNet18Convs()) {
    double ms[3];
    int idx = 0;
    for (int threads : {1, 2, 4}) {
      gemm::Context ctx(threads, profile);
      ConvBench b = MakeBinaryConv(dims, ctx);
      ms[idx++] = 1e3 * profiling::MeasureMedianSeconds(b.run, 1, 5, 20, 0.02);
    }
    std::printf("bconv %-16s %10.3f %12.3f %12.3f\n", name.c_str(), ms[0],
                ms[1], ms[2]);
  }

  // Model-level scaling.
  {
    double ms[3];
    int idx = 0;
    for (int threads : {1, 2, 4}) {
      Graph g = BuildQuickNet(QuickNetMediumConfig(), 224);
      LCE_CHECK(Convert(g).ok());
      InterpreterOptions opts;
      opts.num_threads = threads;
      opts.kernel_profile = profile;
      Interpreter interp(g, opts);
      LCE_CHECK(interp.Prepare().ok());
      Rng rng(1);
      Tensor in = interp.input(0);
      for (std::int64_t i = 0; i < in.num_elements(); ++i) {
        in.data<float>()[i] = rng.Uniform();
      }
      ms[idx++] =
          1e3 * profiling::MeasureMedianSeconds([&] { interp.Invoke(); }, 1,
                                                5, 10, 0.1);
    }
    std::printf("%-22s %10.1f %12.1f %12.1f\n", "QuickNet 224x224", ms[0],
                ms[1], ms[2]);
  }
  return 0;
}
