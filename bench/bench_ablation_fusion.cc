// Ablation (paper section 3.1): the latency value of the converter's graph
// optimizations, measured on QuickNet and on a shortcut-free binarized
// ResNet18 (where bitpacked chaining can fire on every layer).
//
//   full       : all passes (the deployed configuration)
//   no-elision : binarized convs always materialize float output + separate
//                LceQuantize ops (no bitpacked layer chaining)
//   no-fusion  : additionally keep BatchNorm/ReLU as standalone ops instead
//                of fusing them into the bconv output transform
//
// Paper: "These graph transformations are crucial for efficient inference
// as the overhead of full-precision channel-wise operations can become
// significant when full-precision convolutions are replaced with binary
// ones."
// The `--json=<path>` variant sweep below additionally ablates the shared
// ConvPipeline row-tile engine at the kernel level: binarized depthwise,
// grouped binary, and int8 convolutions, each fused (the production
// row-tile path) vs force_unfused (the legacy full-image pipeline). The
// committed BENCH_conv_pipeline.json at the repo root is this report; the
// perf-smoke CI job asserts its per-variant fused/interior tile counters
// and the fused >= legacy geomean per variant.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "gemm/int8_isa.h"
#include "kernels/bconv2d.h"
#include "kernels/bdepthwise.h"
#include "kernels/conv2d_int8.h"
#include "models/zoo.h"
#include "telemetry/run_report.h"

namespace {

using namespace lce;
using namespace lce::bench;

std::unique_ptr<Interpreter> Prep(const std::function<Graph(int)>& build,
                                  const ConvertOptions& opts,
                                  gemm::KernelProfile profile,
                                  std::unique_ptr<Graph>& storage) {
  storage = std::make_unique<Graph>(build(224));
  LCE_CHECK(Convert(*storage, opts).ok());
  InterpreterOptions iopts;
  iopts.kernel_profile = profile;
  auto interp = std::make_unique<Interpreter>(*storage, iopts);
  LCE_CHECK(interp->Prepare().ok());
  Rng rng(1);
  Tensor in = interp->input(0);
  for (std::int64_t i = 0; i < in.num_elements(); ++i) {
    in.data<float>()[i] = rng.Uniform();
  }
  interp->Invoke();  // warmup
  return interp;
}

void Run(const char* name, const std::function<Graph(int)>& build,
         gemm::KernelProfile profile) {
  ConvertOptions full;
  ConvertOptions no_elision = full;
  no_elision.elide_quantize = false;
  ConvertOptions no_fusion = no_elision;
  no_fusion.fuse_bconv_output_transform = false;
  no_fusion.fuse_batch_norm = false;
  no_fusion.fuse_activations = false;
  no_fusion.swap_maxpool_sign = false;

  // Interleave the three configurations round-robin so slow drift on a
  // shared host affects them equally; report per-config medians.
  std::unique_ptr<Graph> g1, g2, g3;
  auto i_full = Prep(build, full, profile, g1);
  auto i_noel = Prep(build, no_elision, profile, g2);
  auto i_nofu = Prep(build, no_fusion, profile, g3);
  std::vector<double> s_full, s_noel, s_nofu;
  for (int round = 0; round < 15; ++round) {
    double t0 = profiling::NowSeconds();
    i_full->Invoke();
    double t1 = profiling::NowSeconds();
    i_noel->Invoke();
    double t2 = profiling::NowSeconds();
    i_nofu->Invoke();
    double t3 = profiling::NowSeconds();
    s_full.push_back(t1 - t0);
    s_noel.push_back(t2 - t1);
    s_nofu.push_back(t3 - t2);
  }
  const double t_full = profiling::Median(s_full);
  const double t_noel = profiling::Median(s_noel);
  const double t_nofu = profiling::Median(s_nofu);
  std::printf("%-28s %10.1f %14.1f (%+5.1f%%) %14.1f (%+5.1f%%)\n", name,
              t_full * 1e3, t_noel * 1e3, 100.0 * (t_noel - t_full) / t_full,
              t_nofu * 1e3, 100.0 * (t_nofu - t_full) / t_full);
}

// Interleaved fused-vs-legacy medians for one prepared kernel pair; the
// round-robin sampling is the same drift defense the graph ablation uses.
template <typename RunFused, typename RunLegacy>
std::pair<double, double> FusedVsLegacy(const RunFused& fused,
                                        const RunLegacy& legacy) {
  constexpr int kWarmup = 2, kSamples = 31;
  std::vector<double> s_fused, s_legacy;
  s_fused.reserve(kSamples);
  s_legacy.reserve(kSamples);
  for (int i = 0; i < kWarmup; ++i) {
    fused();
    legacy();
  }
  for (int s = 0; s < kSamples; ++s) {
    double t0 = profiling::NowSeconds();
    fused();
    double t1 = profiling::NowSeconds();
    legacy();
    double t2 = profiling::NowSeconds();
    s_fused.push_back(t1 - t0);
    s_legacy.push_back(t2 - t1);
  }
  return {profiling::Median(std::move(s_fused)),
          profiling::Median(std::move(s_legacy))};
}

// Accumulates per-shape speedups into a per-variant geomean and the report.
class VariantSweep {
 public:
  VariantSweep(const char* variant, telemetry::RunReport& report)
      : variant_(variant), report_(report) {}

  void Add(const std::string& shape, double fused_s, double legacy_s) {
    const double speedup = fused_s > 0 ? legacy_s / fused_s : 0.0;
    std::printf("  %-24s %12.3f %12.3f %10.2fx\n", shape.c_str(),
                fused_s * 1e3, legacy_s * 1e3, speedup);
    report_.AddResult(variant_ + ".fused_ms." + shape, fused_s * 1e3);
    report_.AddResult(variant_ + ".legacy_ms." + shape, legacy_s * 1e3);
    report_.AddResult(variant_ + ".fused_speedup." + shape, speedup);
    if (speedup > 0) {
      log_speedup_ += std::log(speedup);
      ++n_;
    }
  }

  void Finish() {
    if (n_ == 0) return;
    const double geomean = std::exp(log_speedup_ / n_);
    std::printf("  %s geomean fused-vs-legacy: %.2fx\n\n", variant_.c_str(),
                geomean);
    report_.AddResult(variant_ + ".geomean_fused_vs_legacy", geomean);
  }

 private:
  std::string variant_;
  telemetry::RunReport& report_;
  double log_speedup_ = 0.0;
  int n_ = 0;
};

void SweepConvPipelineVariants(gemm::Context& ctx,
                               telemetry::RunReport& report) {
  std::printf(
      "=== ConvPipeline variant ablation: fused row-tile vs legacy "
      "full-image ===\n\n");
  std::printf("  %-24s %12s %12s %11s\n", "shape", "fused-ms", "legacy-ms",
              "speedup");

  {  // Binarized depthwise (the QuickNet spatial reduction stages).
    VariantSweep sweep("bdepthwise", report);
    const struct {
      int hw, ch, stride;
    } cases[] = {{56, 64, 1}, {28, 128, 2}, {14, 256, 1}};
    for (const auto& c : cases) {
      Conv2DGeometry g;
      g.in_h = g.in_w = c.hw;
      g.in_c = g.out_c = c.ch;
      g.filter_h = g.filter_w = 3;
      g.stride_h = g.stride_w = c.stride;
      g.padding = Padding::kSameOne;
      Rng rng(c.hw + c.ch);
      Tensor in(DataType::kBitpacked, Shape{1, c.hw, c.hw, c.ch});
      FillBitpacked(in, rng);
      std::vector<float> w(static_cast<std::size_t>(9) * c.ch);
      for (auto& v : w) v = rng.Sign();
      BDepthwiseConv2DAttrs attrs;
      attrs.geo = g;
      BDepthwiseConv2D fused(w.data(), attrs);
      attrs.force_unfused = true;
      BDepthwiseConv2D legacy(w.data(), attrs);
      Tensor out(DataType::kFloat32, Shape{1, g.out_h(), g.out_w(), c.ch});
      const auto [f, l] =
          FusedVsLegacy([&] { fused.Run(in, out, ctx); },
                        [&] { legacy.Run(in, out, ctx); });
      char shape[64];
      std::snprintf(shape, sizeof(shape), "%dx%dx%d_s%d", c.hw, c.hw, c.ch,
                    c.stride);
      sweep.Add(shape, f, l);
    }
    sweep.Finish();
  }

  {  // Grouped binary convolution (previously always fell back to unfused).
    VariantSweep sweep("bconv2d_grouped", report);
    const struct {
      int hw, ch, groups;
    } cases[] = {{28, 64, 2}, {14, 128, 4}, {14, 256, 2}};
    for (const auto& c : cases) {
      Conv2DGeometry g;
      g.in_h = g.in_w = c.hw;
      g.in_c = g.out_c = c.ch;
      g.filter_h = g.filter_w = 3;
      g.padding = Padding::kSameOne;
      Rng rng(c.hw + c.ch + c.groups);
      Tensor in(DataType::kBitpacked, Shape{1, c.hw, c.hw, c.ch});
      FillBitpacked(in, rng);
      std::vector<float> w(static_cast<std::size_t>(c.ch) * 9 *
                           (c.ch / c.groups));
      for (auto& v : w) v = rng.Sign();
      BConv2DAttrs attrs;
      attrs.geo = g;
      attrs.groups = c.groups;
      BConv2D fused(w.data(), attrs);
      attrs.force_unfused = true;
      BConv2D legacy(w.data(), attrs);
      Tensor out(DataType::kFloat32, Shape{1, g.out_h(), g.out_w(), c.ch});
      const auto [f, l] =
          FusedVsLegacy([&] { fused.Run(in, out, ctx); },
                        [&] { legacy.Run(in, out, ctx); });
      char shape[64];
      std::snprintf(shape, sizeof(shape), "%dx%dx%d_g%d", c.hw, c.hw, c.ch,
                    c.groups);
      sweep.Add(shape, f, l);
    }
    sweep.Finish();
  }

  {  // Int8 (the PTQ first/last stages that stay full-precision).
    VariantSweep sweep("conv2d_int8", report);
    const struct {
      int hw, in_c, out_c;
    } cases[] = {{56, 32, 64}, {28, 64, 64}, {14, 128, 128}};
    for (const auto& c : cases) {
      Conv2DGeometry g;
      g.in_h = g.in_w = c.hw;
      g.in_c = c.in_c;
      g.out_c = c.out_c;
      g.filter_h = g.filter_w = 3;
      g.padding = Padding::kSameZero;
      Rng rng(c.hw + c.in_c);
      Tensor in(DataType::kInt8, Shape{1, c.hw, c.hw, c.in_c});
      FillInt8(in, rng);
      std::vector<std::int8_t> w(static_cast<std::size_t>(c.out_c) * 9 *
                                 c.in_c);
      for (auto& v : w) v = rng.Int8(-127, 127);
      Conv2DInt8Attrs attrs;
      attrs.geo = g;
      attrs.input_quant = {0.02f, 3};
      attrs.weight_quant = {0.005f, 0};
      attrs.output_quant = {0.05f, -4};
      Conv2DInt8 fused(w.data(), attrs);
      attrs.force_unfused = true;
      Conv2DInt8 legacy(w.data(), attrs);
      Tensor out(DataType::kInt8, Shape{1, g.out_h(), g.out_w(), c.out_c});
      const auto [f, l] =
          FusedVsLegacy([&] { fused.Run(in, out, ctx); },
                        [&] { legacy.Run(in, out, ctx); });
      // Each sample pair ends on the legacy run, which parks the
      // conv2d_int8.tier gauge on the widened family; one trailing fused
      // run leaves it at the tier the fused path actually selected so the
      // report snapshot (and the CI gauge assertion) sees it.
      fused.Run(in, out, ctx);
      char shape[64];
      std::snprintf(shape, sizeof(shape), "%dx%dx%d-%d", c.hw, c.hw, c.in_c,
                    c.out_c);
      sweep.Add(shape, f, l);
    }
    sweep.Finish();
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto profile = ParseProfile(argc, argv);
  const std::string json_path = ParseJsonPath(argc, argv);
  const int threads =
      std::atoi(ParseStringFlag(argc, argv, "--threads=", "1").c_str());

  // Kernel-level ConvPipeline ablation first: its fused runs populate the
  // per-variant fused/interior tile counters that the report snapshot (and
  // the perf-smoke CI assertion) read.
  telemetry::RunReport report("bench_ablation_fusion");
  report.AddMeta("profile", ProfileName(profile));
  report.AddMetaInt("threads", threads > 0 ? threads : 1);
  // Which int8 micro-kernel tier the fused conv2d_int8 runs actually use
  // (gemm/int8_isa.h); perf-smoke asserts selected == best to catch a
  // selection regression without hard-coding a machine-dependent tier.
  report.AddMeta("int8_tier_selected",
                 gemm::Int8TierName(gemm::SelectInt8Tier()));
  report.AddMeta("int8_tier_best", gemm::Int8TierName(gemm::BestInt8Tier()));
  {
    gemm::Context ctx(threads > 0 ? threads : 1, profile);
    SweepConvPipelineVariants(ctx, report);
  }

  std::printf("=== Ablation: converter graph optimizations (profile=%s) "
              "===\n\n",
              ProfileName(profile));
  std::printf("%-28s %10s %24s %24s\n", "Model", "full-ms", "no-elision-ms",
              "no-fusion-ms");
  Run("QuickNet",
      [](int hw) { return BuildQuickNet(QuickNetMediumConfig(), hw); },
      profile);
  Run("BinarizedResNet18 (no sc)",
      [](int hw) { return BuildBinarizedResNet18(ShortcutMode::kNone, hw); },
      profile);
  std::printf(
      "\nShape: disabling bitpacked chaining and transform fusion adds\n"
      "full-precision glue back and increases latency, most on the\n"
      "shortcut-free network where every layer chains bitpacked.\n");
  if (!json_path.empty()) {
    const Status s = report.WriteJson(json_path);
    if (s.ok()) {
      std::printf("wrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s: %s\n", json_path.c_str(),
                   s.message().c_str());
      return 1;
    }
  }
  return 0;
}
