// Ablation (paper section 3.1): the latency value of the converter's graph
// optimizations, measured on QuickNet and on a shortcut-free binarized
// ResNet18 (where bitpacked chaining can fire on every layer).
//
//   full       : all passes (the deployed configuration)
//   no-elision : binarized convs always materialize float output + separate
//                LceQuantize ops (no bitpacked layer chaining)
//   no-fusion  : additionally keep BatchNorm/ReLU as standalone ops instead
//                of fusing them into the bconv output transform
//
// Paper: "These graph transformations are crucial for efficient inference
// as the overhead of full-precision channel-wise operations can become
// significant when full-precision convolutions are replaced with binary
// ones."
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "models/zoo.h"

namespace {

using namespace lce;
using namespace lce::bench;

std::unique_ptr<Interpreter> Prep(const std::function<Graph(int)>& build,
                                  const ConvertOptions& opts,
                                  gemm::KernelProfile profile,
                                  std::unique_ptr<Graph>& storage) {
  storage = std::make_unique<Graph>(build(224));
  LCE_CHECK(Convert(*storage, opts).ok());
  InterpreterOptions iopts;
  iopts.kernel_profile = profile;
  auto interp = std::make_unique<Interpreter>(*storage, iopts);
  LCE_CHECK(interp->Prepare().ok());
  Rng rng(1);
  Tensor in = interp->input(0);
  for (std::int64_t i = 0; i < in.num_elements(); ++i) {
    in.data<float>()[i] = rng.Uniform();
  }
  interp->Invoke();  // warmup
  return interp;
}

void Run(const char* name, const std::function<Graph(int)>& build,
         gemm::KernelProfile profile) {
  ConvertOptions full;
  ConvertOptions no_elision = full;
  no_elision.elide_quantize = false;
  ConvertOptions no_fusion = no_elision;
  no_fusion.fuse_bconv_output_transform = false;
  no_fusion.fuse_batch_norm = false;
  no_fusion.fuse_activations = false;
  no_fusion.swap_maxpool_sign = false;

  // Interleave the three configurations round-robin so slow drift on a
  // shared host affects them equally; report per-config medians.
  std::unique_ptr<Graph> g1, g2, g3;
  auto i_full = Prep(build, full, profile, g1);
  auto i_noel = Prep(build, no_elision, profile, g2);
  auto i_nofu = Prep(build, no_fusion, profile, g3);
  std::vector<double> s_full, s_noel, s_nofu;
  for (int round = 0; round < 15; ++round) {
    double t0 = profiling::NowSeconds();
    i_full->Invoke();
    double t1 = profiling::NowSeconds();
    i_noel->Invoke();
    double t2 = profiling::NowSeconds();
    i_nofu->Invoke();
    double t3 = profiling::NowSeconds();
    s_full.push_back(t1 - t0);
    s_noel.push_back(t2 - t1);
    s_nofu.push_back(t3 - t2);
  }
  const double t_full = profiling::Median(s_full);
  const double t_noel = profiling::Median(s_noel);
  const double t_nofu = profiling::Median(s_nofu);
  std::printf("%-28s %10.1f %14.1f (%+5.1f%%) %14.1f (%+5.1f%%)\n", name,
              t_full * 1e3, t_noel * 1e3, 100.0 * (t_noel - t_full) / t_full,
              t_nofu * 1e3, 100.0 * (t_nofu - t_full) / t_full);
}

}  // namespace

int main(int argc, char** argv) {
  const auto profile = ParseProfile(argc, argv);
  std::printf("=== Ablation: converter graph optimizations (profile=%s) "
              "===\n\n",
              ProfileName(profile));
  std::printf("%-28s %10s %24s %24s\n", "Model", "full-ms", "no-elision-ms",
              "no-fusion-ms");
  Run("QuickNet",
      [](int hw) { return BuildQuickNet(QuickNetMediumConfig(), hw); },
      profile);
  Run("BinarizedResNet18 (no sc)",
      [](int hw) { return BuildBinarizedResNet18(ShortcutMode::kNone, hw); },
      profile);
  std::printf(
      "\nShape: disabling bitpacked chaining and transform fusion adds\n"
      "full-precision glue back and increases latency, most on the\n"
      "shortcut-free network where every layer chains bitpacked.\n");
  return 0;
}
