// Shared helpers for the benchmark harnesses in bench/. Each binary
// regenerates one table or figure of the paper (see DESIGN.md's experiment
// index). Every binary accepts `--profile=scalar` to run the portable
// kernels instead of the SIMD ones -- the stand-in for the paper's second
// benchmark device (Raspberry Pi 4B appendix results).
#ifndef LCE_BENCH_BENCH_COMMON_H_
#define LCE_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "converter/convert.h"
#include "core/random.h"
#include "core/tensor.h"
#include "gemm/context.h"
#include "graph/interpreter.h"
#include "kernels/bconv2d.h"
#include "kernels/conv2d_float.h"
#include "kernels/conv2d_int8.h"
#include "profiling/bench_utils.h"

namespace lce::bench {

inline gemm::KernelProfile ParseProfile(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--profile=scalar") == 0) {
      return gemm::KernelProfile::kScalar;
    }
  }
  return gemm::KernelProfile::kSimd;
}

inline bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

// Value of a `--key=value` flag, or `def` when absent.
inline std::string ParseStringFlag(int argc, char** argv, const char* prefix,
                                   const std::string& def = "") {
  const std::size_t len = std::strlen(prefix);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, len) == 0) return argv[i] + len;
  }
  return def;
}

// Path given by `--json=<path>`, or "" when the flag is absent. Benches
// that support it write a telemetry::RunReport (machine-readable run
// report: latency stats + metrics snapshot) to this path.
inline std::string ParseJsonPath(int argc, char** argv) {
  return ParseStringFlag(argc, argv, "--json=");
}

inline const char* ProfileName(gemm::KernelProfile p) {
  return p == gemm::KernelProfile::kSimd ? "simd" : "scalar";
}

// A benchmarkable convolution: closure plus workload metadata.
struct ConvBench {
  std::string name;
  std::int64_t macs = 0;
  std::function<void()> run;
  // Keep-alive for operands/kernels captured by `run`.
  std::shared_ptr<void> state;
};

// Square convolutions with equal in/out channels, stride 1, SAME padding --
// the shape family used in Figures 2/3/4.
struct ConvDims {
  int hw;
  int channels;
  int kernel;
  int stride = 1;
  std::int64_t macs() const {
    const int out = (hw + stride - 1) / stride;
    return static_cast<std::int64_t>(out) * out * kernel * kernel *
           static_cast<std::int64_t>(channels) * channels;
  }
};

// The four ResNet18 convolutions of Figure 2 (A-D).
inline std::vector<std::pair<std::string, ConvDims>> ResNet18Convs() {
  return {{"A 56x56x64x64", {56, 64, 3}},
          {"B 28x28x128x128", {28, 128, 3}},
          {"C 14x14x256x256", {14, 256, 3}},
          {"D 7x7x256x256", {7, 256, 3}}};
}

ConvBench MakeFloatConv(const ConvDims& d, gemm::Context& ctx);
ConvBench MakeInt8Conv(const ConvDims& d, gemm::Context& ctx);
ConvBench MakeBinaryConv(const ConvDims& d, gemm::Context& ctx);

// One measured convolution of the Figure 3 / Table 2 sweep.
struct SweepRow {
  ConvDims dims;
  double float_ms = 0.0;
  double int8_ms = 0.0;
  double binary_ms = 0.0;
};

// The paper's sweep grid (Figure 3): channels {32,64,96,128,160,256},
// spatial {8,16,32,64}, kernels {3,5}, stride 1, equal in/out channels.
// Convolutions above `max_macs` are skipped (pass INT64_MAX via --full to
// run the complete grid; the largest float cells take hundreds of ms each).
std::vector<SweepRow> RunConvSweep(gemm::Context& ctx, std::int64_t max_macs);

// Builds a zoo training graph, converts it, prepares an interpreter with
// random input and returns it ready to Invoke().
std::unique_ptr<Interpreter> PrepareConverted(
    Graph& graph_storage, const std::function<Graph(int)>& build, int hw,
    gemm::KernelProfile profile, bool profiling);

// Median latency of interp.Invoke() in seconds.
double ModelLatency(Interpreter& interp, int reps = 5);

// Writes rows to results/<name>.csv (creating results/ if needed) so the
// figures can be re-plotted from machine-readable data. Prints the path.
// Fails soft: benches still print their tables if the filesystem is
// read-only. When the LCE_BENCH_JSON environment variable is set (any
// value), the same table is mirrored to results/<name>.json as
// {"name", "columns": [...], "rows": [[...]]} -- scripts/
// run_all_experiments.sh sets it so every bench run leaves JSON behind.
class CsvWriter {
 public:
  // header: comma-separated column names.
  CsvWriter(const std::string& name, const std::string& header);
  ~CsvWriter();
  // Appends one comma-separated row.
  void Row(const std::string& row);
  bool ok() const { return file_ != nullptr; }

 private:
  std::FILE* file_ = nullptr;
  std::string name_;
  std::string path_;
  bool mirror_json_ = false;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lce::bench

#endif  // LCE_BENCH_BENCH_COMMON_H_
