#include "bench_common.h"

#include <cstdlib>
#include <filesystem>

#include "core/bitpack.h"
#include "telemetry/json.h"

namespace lce::bench {
namespace {

// Splits a comma-separated CSV line into cells (the benches never emit
// quoted or escaped commas).
std::vector<std::string> SplitCsv(const std::string& line) {
  std::vector<std::string> cells;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      cells.push_back(line.substr(start));
      return cells;
    }
    cells.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

struct FloatConvState {
  Tensor input;
  Tensor output;
  std::unique_ptr<Conv2DFloat> op;
};

struct Int8ConvState {
  Tensor input;
  Tensor output;
  std::unique_ptr<Conv2DInt8> op;
};

struct BinaryConvState {
  Tensor input;
  Tensor output;
  std::unique_ptr<BConv2D> op;
};

Conv2DGeometry Geo(const ConvDims& d) {
  Conv2DGeometry g;
  g.in_h = g.in_w = d.hw;
  g.in_c = g.out_c = d.channels;
  g.filter_h = g.filter_w = d.kernel;
  g.stride_h = g.stride_w = d.stride;
  g.padding = Padding::kSameZero;
  return g;
}

}  // namespace

ConvBench MakeFloatConv(const ConvDims& d, gemm::Context& ctx) {
  auto state = std::make_shared<FloatConvState>();
  const Conv2DGeometry g = Geo(d);
  Rng rng(d.hw * 101 + d.channels);
  state->input = Tensor(DataType::kFloat32, Shape{1, d.hw, d.hw, d.channels});
  FillUniform(state->input, rng);
  std::vector<float> weights(static_cast<std::size_t>(d.channels) * d.kernel *
                             d.kernel * d.channels);
  for (auto& v : weights) v = rng.Uniform(-0.1f, 0.1f);
  Conv2DFloatAttrs attrs;
  attrs.geo = g;
  state->op = std::make_unique<Conv2DFloat>(weights.data(), attrs);
  state->output =
      Tensor(DataType::kFloat32, Shape{1, g.out_h(), g.out_w(), d.channels});

  ConvBench b;
  b.name = "float32";
  b.macs = d.macs();
  b.run = [state_ptr = state.get(), &ctx] {
    state_ptr->op->Run(state_ptr->input, state_ptr->output, ctx);
  };
  b.state = state;
  return b;
}

ConvBench MakeInt8Conv(const ConvDims& d, gemm::Context& ctx) {
  auto state = std::make_shared<Int8ConvState>();
  const Conv2DGeometry g = Geo(d);
  Rng rng(d.hw * 131 + d.channels);
  state->input = Tensor(DataType::kInt8, Shape{1, d.hw, d.hw, d.channels});
  FillInt8(state->input, rng);
  std::vector<std::int8_t> weights(static_cast<std::size_t>(d.channels) *
                                   d.kernel * d.kernel * d.channels);
  for (auto& v : weights) v = rng.Int8(-127, 127);
  Conv2DInt8Attrs attrs;
  attrs.geo = g;
  attrs.input_quant = {0.05f, 0};
  attrs.weight_quant = {0.005f, 0};
  attrs.output_quant = {0.2f, 0};
  state->op = std::make_unique<Conv2DInt8>(weights.data(), attrs);
  state->output =
      Tensor(DataType::kInt8, Shape{1, g.out_h(), g.out_w(), d.channels});

  ConvBench b;
  b.name = "int8";
  b.macs = d.macs();
  b.run = [state_ptr = state.get(), &ctx] {
    state_ptr->op->Run(state_ptr->input, state_ptr->output, ctx);
  };
  b.state = state;
  return b;
}

ConvBench MakeBinaryConv(const ConvDims& d, gemm::Context& ctx) {
  auto state = std::make_shared<BinaryConvState>();
  Conv2DGeometry g = Geo(d);
  g.padding = Padding::kSameOne;  // the fast binary padding mode
  Rng rng(d.hw * 151 + d.channels);
  Tensor input_f(DataType::kFloat32, Shape{1, d.hw, d.hw, d.channels});
  FillSigns(input_f, rng);
  state->input = Tensor(DataType::kBitpacked, input_f.shape());
  BitpackTensor(input_f, state->input);
  std::vector<float> weights(static_cast<std::size_t>(d.channels) * d.kernel *
                             d.kernel * d.channels);
  for (auto& v : weights) v = rng.Sign();
  BConv2DAttrs attrs;
  attrs.geo = g;
  attrs.output_type = BConvOutputType::kFloat;
  // Realistic fused transform (batch-norm multiplier and bias).
  attrs.multiplier.assign(d.channels, 0.02f);
  attrs.bias.assign(d.channels, 0.1f);
  state->op = std::make_unique<BConv2D>(weights.data(), attrs);
  state->output =
      Tensor(DataType::kFloat32, Shape{1, g.out_h(), g.out_w(), d.channels});

  ConvBench b;
  b.name = "binary";
  b.macs = d.macs();
  b.run = [state_ptr = state.get(), &ctx] {
    state_ptr->op->Run(state_ptr->input, state_ptr->output, ctx);
  };
  b.state = state;
  return b;
}

std::vector<SweepRow> RunConvSweep(gemm::Context& ctx, std::int64_t max_macs) {
  std::vector<SweepRow> rows;
  for (int hw : {8, 16, 32, 64}) {
    for (int ch : {32, 64, 96, 128, 160, 256}) {
      for (int k : {3, 5}) {
        ConvDims d{hw, ch, k};
        if (d.macs() > max_macs) continue;
        SweepRow row;
        row.dims = d;
        {
          ConvBench f = MakeFloatConv(d, ctx);
          row.float_ms = 1e3 * profiling::MeasureMedianSeconds(
                                   f.run, /*warmup=*/1, /*min_reps=*/2,
                                   /*max_reps=*/5, /*min_seconds=*/0.01);
        }
        {
          ConvBench q = MakeInt8Conv(d, ctx);
          row.int8_ms = 1e3 * profiling::MeasureMedianSeconds(
                                  q.run, 1, 2, 5, 0.01);
        }
        {
          ConvBench b = MakeBinaryConv(d, ctx);
          row.binary_ms = 1e3 * profiling::MeasureMedianSeconds(
                                    b.run, 1, 3, 20, 0.01);
        }
        rows.push_back(row);
      }
    }
  }
  return rows;
}

std::unique_ptr<Interpreter> PrepareConverted(
    Graph& graph_storage, const std::function<Graph(int)>& build, int hw,
    gemm::KernelProfile profile, bool profiling) {
  graph_storage = build(hw);
  const Status converted = Convert(graph_storage);
  LCE_CHECK(converted.ok());
  InterpreterOptions opts;
  opts.kernel_profile = profile;
  opts.enable_profiling = profiling;
  auto interp = std::make_unique<Interpreter>(graph_storage, opts);
  const Status prepared = interp->Prepare();
  LCE_CHECK(prepared.ok());
  Rng rng(1);
  Tensor in = interp->input(0);
  for (std::int64_t i = 0; i < in.num_elements(); ++i) {
    in.data<float>()[i] = rng.Uniform();
  }
  return interp;
}

CsvWriter::CsvWriter(const std::string& name, const std::string& header)
    : name_(name) {
  std::filesystem::create_directories("results");
  path_ = "results/" + name + ".csv";
  file_ = std::fopen(path_.c_str(), "w");
  if (file_ != nullptr) {
    std::fprintf(file_, "%s\n", header.c_str());
  }
  mirror_json_ = std::getenv("LCE_BENCH_JSON") != nullptr;
  if (mirror_json_) header_ = SplitCsv(header);
}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
    std::printf("[csv] wrote %s\n", path_.c_str());
  }
  if (!mirror_json_) return;
  const std::string json_path = "results/" + name_ + ".json";
  std::FILE* jf = std::fopen(json_path.c_str(), "w");
  if (jf == nullptr) return;
  std::string out = "{\"name\": \"" + telemetry::JsonEscape(name_) +
                    "\", \"columns\": [";
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + telemetry::JsonEscape(header_[i]) + "\"";
  }
  out += "], \"rows\": [";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out += r > 0 ? ",\n  [" : "\n  [";
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      if (c > 0) out += ", ";
      out += "\"" + telemetry::JsonEscape(rows_[r][c]) + "\"";
    }
    out += "]";
  }
  out += "\n]}\n";
  std::fwrite(out.data(), 1, out.size(), jf);
  std::fclose(jf);
  std::printf("[json] wrote %s\n", json_path.c_str());
}

void CsvWriter::Row(const std::string& row) {
  if (file_ != nullptr) std::fprintf(file_, "%s\n", row.c_str());
  if (mirror_json_) rows_.push_back(SplitCsv(row));
}

double ModelLatency(Interpreter& interp, int reps) {
  return profiling::MeasureMedianSeconds([&] { interp.Invoke(); },
                                         /*warmup=*/1, /*min_reps=*/reps,
                                         /*max_reps=*/reps, /*min_seconds=*/0);
}

}  // namespace lce::bench
