// Table 4: latency cost of each operator in QuickNet as a proportion of
// overall latency (single threaded), with LceBConv2d split into the main
// accumulation loop and the output transformation.
//
// Paper (RPi 4B, single thread): LceQuantize 3.52%, accumulation loop
// 53.41%, output transformation 3.68%, fp Conv2D 20.15%, fp Add 9.55%,
// other fp 9.69%. Shape to reproduce: the accumulation loop dominates;
// the output transform and quantize ops are small; fp Conv2D and Add are
// the main full-precision contributors.
#include <cstdio>

#include "bench_common.h"
#include "models/zoo.h"
#include "profiling/model_profiler.h"

int main(int argc, char** argv) {
  using namespace lce;
  using namespace lce::bench;
  const auto profile = ParseProfile(argc, argv);

  Graph g;
  auto interp = PrepareConverted(
      g, [](int hw) { return BuildQuickNet(QuickNetMediumConfig(), hw); },
      224, profile, /*profiling=*/true);
  const auto prof = profiling::ProfileModel(*interp, 5);
  const auto rows = profiling::OperatorBreakdown(prof);

  std::printf(
      "=== Table 4: QuickNet operator latency breakdown (profile=%s, single "
      "thread) ===\n\n",
      ProfileName(profile));
  std::printf("%-38s %12s %10s\n", "Operator", "Latency (ms)", "Latency %");
  for (const auto& r : rows) {
    std::printf("%-38s %12.2f %9.2f%%\n", r.category.c_str(), r.seconds * 1e3,
                r.percent);
  }
  std::printf("Total: %.1f ms\n", profiling::TotalSeconds(prof) * 1e3);
  std::printf(
      "\nPaper (RPi 4B): LceQuantize 3.52%%, accumulation loop 53.41%%,\n"
      "output transformation 3.68%%, fp Conv2D 20.15%%, fp Add 9.55%%,\n"
      "all other fp 9.69%%.\n");
  return 0;
}
