// Ablation (paper section 3.2): the value of writing bitpacked output
// directly from the BGEMM accumulator (precomputed thresholds) versus
// materializing float output and re-binarizing with a separate LceQuantize
// -- the exact pair of op streams the converter's quantize-elision pass
// chooses between when two binarized convolutions are chained.
#include <cstdio>

#include "bench_common.h"
#include "core/bitpack.h"
#include "kernels/bconv2d.h"
#include "kernels/quantize_ops.h"

namespace {

using namespace lce;
using namespace lce::bench;

struct Setup {
  Tensor input;
  std::unique_ptr<BConv2D> bconv_float;
  std::unique_ptr<BConv2D> bconv_packed;
  Tensor out_float;
  Tensor out_packed_direct;
  Tensor out_packed_via_quantize;
};

Setup Make(const ConvDims& d) {
  Setup s;
  Conv2DGeometry g;
  g.in_h = g.in_w = d.hw;
  g.in_c = g.out_c = d.channels;
  g.filter_h = g.filter_w = d.kernel;
  g.padding = Padding::kSameOne;
  Rng rng(d.hw * 7 + d.channels);
  Tensor in_f(DataType::kFloat32, Shape{1, d.hw, d.hw, d.channels});
  FillSigns(in_f, rng);
  s.input = Tensor(DataType::kBitpacked, in_f.shape());
  BitpackTensor(in_f, s.input);
  std::vector<float> w(static_cast<std::size_t>(d.channels) * d.kernel *
                       d.kernel * d.channels);
  for (auto& v : w) v = rng.Sign();
  BConv2DAttrs attrs;
  attrs.geo = g;
  attrs.multiplier.assign(d.channels, 0.02f);
  attrs.bias.assign(d.channels, 0.1f);
  attrs.output_type = BConvOutputType::kFloat;
  s.bconv_float = std::make_unique<BConv2D>(w.data(), attrs);
  attrs.output_type = BConvOutputType::kBitpacked;
  s.bconv_packed = std::make_unique<BConv2D>(w.data(), attrs);
  s.out_float = Tensor(DataType::kFloat32, in_f.shape());
  s.out_packed_direct = Tensor(DataType::kBitpacked, in_f.shape());
  s.out_packed_via_quantize = Tensor(DataType::kBitpacked, in_f.shape());
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const auto profile = ParseProfile(argc, argv);
  gemm::Context ctx(1, profile);

  std::printf("=== Ablation: thresholded bitpacked output vs float + "
              "LceQuantize (profile=%s) ===\n\n",
              ProfileName(profile));
  std::printf("%-18s %16s %22s %9s\n", "Convolution", "direct (ms)",
              "float+quantize (ms)", "saving");
  for (const auto& [name, dims] : ResNet18Convs()) {
    Setup s = Make(dims);
    const double direct = profiling::MeasureMedianSeconds(
        [&] { s.bconv_packed->Run(s.input, s.out_packed_direct, ctx); }, 2, 9,
        40, 0.08);
    const double via_quantize = profiling::MeasureMedianSeconds(
        [&] {
          s.bconv_float->Run(s.input, s.out_float, ctx);
          LceQuantize(s.out_float, s.out_packed_via_quantize);
        },
        2, 9, 40, 0.08);
    std::printf("%-18s %16.3f %22.3f %8.1f%%\n", name.c_str(), direct * 1e3,
                via_quantize * 1e3,
                100.0 * (via_quantize - direct) / via_quantize);
  }
  std::printf(
      "\nPaper section 3.2: when the next layer is binarized, emitting\n"
      "bitpacked output directly avoids materializing float values and the\n"
      "separate LceQuantize pass -- the op stream the converter's\n"
      "quantize-elision produces.\n");
  return 0;
}
