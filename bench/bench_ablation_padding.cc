// Ablation (paper section 3.2): one-padding vs zero-padding binarized
// convolutions. Zero padding requires the extra correction step over the
// border outputs, so it must be measurably slower; the paper introduces
// one-padding (and trains QuickNet with it) for exactly this reason.
#include <cstdio>

#include "bench_common.h"
#include "core/bitpack.h"
#include "converter/convert.h"
#include "graph/interpreter.h"
#include "kernels/bconv2d.h"
#include "models/zoo.h"

namespace {

using namespace lce;
using namespace lce::bench;

double BConvLatency(const ConvDims& d, Padding pad, gemm::Context& ctx) {
  Conv2DGeometry g;
  g.in_h = g.in_w = d.hw;
  g.in_c = g.out_c = d.channels;
  g.filter_h = g.filter_w = d.kernel;
  g.padding = pad;
  Rng rng(d.hw + d.channels);
  Tensor input_f(DataType::kFloat32, Shape{1, d.hw, d.hw, d.channels});
  FillSigns(input_f, rng);
  Tensor input(DataType::kBitpacked, input_f.shape());
  BitpackTensor(input_f, input);
  std::vector<float> w(static_cast<std::size_t>(d.channels) * d.kernel *
                       d.kernel * d.channels);
  for (auto& v : w) v = rng.Sign();
  BConv2DAttrs attrs;
  attrs.geo = g;
  attrs.output_type = BConvOutputType::kFloat;
  BConv2D op(w.data(), attrs);
  Tensor out(DataType::kFloat32, Shape{1, d.hw, d.hw, d.channels});
  return profiling::MeasureMedianSeconds([&] { op.Run(input, out, ctx); }, 2,
                                         15, 80, 0.15);
}

}  // namespace

int main(int argc, char** argv) {
  const auto profile = ParseProfile(argc, argv);
  gemm::Context ctx(1, profile);

  std::printf("=== Ablation: one-padding vs zero-padding binarized convs "
              "(profile=%s) ===\n\n",
              ProfileName(profile));
  std::printf("%-18s %14s %15s %12s\n", "Convolution", "one-pad (ms)",
              "zero-pad (ms)", "zero/one");
  for (const auto& [name, dims] : ResNet18Convs()) {
    const double one = BConvLatency(dims, Padding::kSameOne, ctx);
    const double zero = BConvLatency(dims, Padding::kSameZero, ctx);
    std::printf("%-18s %14.3f %15.3f %11.2fx\n", name.c_str(), one * 1e3,
                zero * 1e3, zero / one);
  }
  // Model-level: QuickNet trained with one- vs zero-padding (section 5.1:
  // "using one-padding rather than zero-padding is not an impediment to
  // training state-of-the-art BNNs" -- and it is faster).
  std::printf("\nQuickNet end-to-end by binary padding mode:\n");
  for (const Padding pad : {Padding::kSameOne, Padding::kSameZero}) {
    Graph g = BuildQuickNet(QuickNetMediumConfig(), 224, pad);
    LCE_CHECK(Convert(g).ok());
    InterpreterOptions opts;
    opts.kernel_profile = profile;
    Interpreter interp(g, opts);
    LCE_CHECK(interp.Prepare().ok());
    Rng rng(1);
    Tensor in = interp.input(0);
    for (std::int64_t i = 0; i < in.num_elements(); ++i) {
      in.data<float>()[i] = rng.Uniform();
    }
    const double ms = 1e3 * profiling::MeasureMedianSeconds(
                                [&] { interp.Invoke(); }, 1, 7, 15, 0.2);
    std::printf("  %-10s %8.1f ms\n", PaddingName(pad).data(), ms);
  }
  std::printf(
      "\nPaper: zero-padding 'requires an extra correction step and is\n"
      "therefore slower'; the relative cost is largest for small feature\n"
      "maps where the border is a larger fraction of the output.\n");
  return 0;
}
