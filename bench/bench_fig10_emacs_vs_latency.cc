// Figure 10 (and appendix Figure 15 with --profile=scalar, which uses the
// appendix's 17x discount): eMACs vs measured latency for the model zoo,
// assuming 15 binary MACs are equivalent to one float MAC.
//
// Paper shape to reproduce: within a family (QuickNets, BinaryDenseNets)
// eMACs track latency well, but across architectures the relationship
// breaks down -- BinaryAlexNet is far slower than its eMAC count suggests.
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.h"
#include "models/macs.h"
#include "models/zoo.h"
#include "profiling/bench_utils.h"

int main(int argc, char** argv) {
  using namespace lce;
  using namespace lce::bench;
  const auto profile = ParseProfile(argc, argv);
  // Main text assumes 15 binary MACs per float MAC (Figure 10); the
  // appendix's RPi analysis uses 17 (Figure 15).
  const double discount =
      profile == gemm::KernelProfile::kSimd ? 15.0 : 17.0;

  std::printf(
      "=== Figure 10: eMACs (%.0f bMAC = 1 MAC) vs latency (profile=%s) "
      "===\n\n",
      discount, ProfileName(profile));
  std::printf("%-18s %-10s %10s %12s %14s\n", "Model", "Family", "eMMACs",
              "latency-ms", "ms per GeMAC");

  struct Point {
    std::string family;
    double log_emacs, log_ms;
  };
  std::vector<Point> points;
  CsvWriter csv("fig10_emacs_vs_latency", "model,family,emacs,latency_ms");
  for (const auto& m : AllZooModels()) {
    Graph g;
    auto interp = PrepareConverted(g, m.build, 224, profile, false);
    const ModelStats stats = ComputeModelStats(g);
    const double emacs = stats.emacs(discount);
    const double ms = 1e3 * ModelLatency(*interp, 3);
    std::printf("%-18s %-10s %10.1f %12.1f %14.2f\n", m.name.c_str(),
                m.family.c_str(), emacs / 1e6, ms, ms / (emacs / 1e9));
    char row[160];
    std::snprintf(row, sizeof(row), "%s,%s,%.0f,%.2f", m.name.c_str(),
                  m.family.c_str(), emacs, ms);
    csv.Row(row);
    points.push_back({m.family, std::log10(emacs), std::log10(ms)});
  }

  // Per-family and global log-log fits: within-family relationships should
  // be much tighter than the global one.
  std::map<std::string, std::pair<std::vector<double>, std::vector<double>>>
      families;
  std::vector<double> all_x, all_y;
  for (const auto& p : points) {
    families[p.family].first.push_back(p.log_emacs);
    families[p.family].second.push_back(p.log_ms);
    all_x.push_back(p.log_emacs);
    all_y.push_back(p.log_ms);
  }
  std::printf("\nLog-log fits (latency ~ eMACs):\n");
  for (const auto& [family, xy] : families) {
    if (xy.first.size() < 2) continue;
    // A meaningful slope needs eMAC spread within the family; families of
    // near-identical sizes (e.g. the two AlexNets) get no fit.
    const auto mm = profiling::Range(xy.first);
    if (mm.max - mm.min < 0.1) {  // < 1.26x spread in eMACs
      std::printf("  %-10s (insufficient eMAC spread for a fit)\n",
                  family.c_str());
      continue;
    }
    const auto fit = profiling::FitLeastSquares(xy.first, xy.second);
    std::printf("  %-10s slope %.2f  R^2 %.3f\n", family.c_str(), fit.slope,
                fit.r_squared);
  }
  const auto global = profiling::FitLeastSquares(all_x, all_y);
  std::printf("  %-10s slope %.2f  R^2 %.3f\n", "ALL", global.slope,
              global.r_squared);
  std::printf(
      "\nPaper shape: MACs are a reasonable proxy within a model family but\n"
      "not across architectures (e.g. BinaryAlexNet is ~2x slower than\n"
      "models with the same eMAC count).\n");
  return 0;
}
