// Google-benchmark micro-suite for the individual kernels: BGEMM vs the
// float/int8 GEMMs, bitpacking, the binary max pool and the bconv output
// transforms. Complements the table/figure harnesses with statistically
// robust per-kernel numbers (real time, iterations auto-tuned).
#include <benchmark/benchmark.h>

#include <vector>

#include "core/bitpack.h"
#include "core/random.h"
#include "gemm/bgemm.h"
#include "gemm/float_gemm.h"
#include "gemm/indirect_bgemm.h"
#include "gemm/int8_gemm.h"
#include "kernels/bconv2d.h"
#include "kernels/bmaxpool.h"
#include "kernels/quantize_ops.h"

namespace {

using namespace lce;

// GEMM dimensions modeled on conv C of Figure 2 (14x14x256x256, 3x3).
constexpr int kM = 196, kN = 256, kK = 2304;

void BM_BGemm(benchmark::State& state) {
  Rng rng(1);
  const int kw = BitpackedWords(kK);
  std::vector<TBitpacked> lhs(static_cast<std::size_t>(kM) * kw);
  std::vector<TBitpacked> rhs(static_cast<std::size_t>(kN) * kw);
  for (auto& v : lhs) v = static_cast<TBitpacked>(rng.Next());
  for (auto& v : rhs) v = static_cast<TBitpacked>(rng.Next());
  gemm::PackedBinaryMatrix packed(rhs.data(), kN, kw);
  std::vector<std::int32_t> out(static_cast<std::size_t>(kM) * kN);
  gemm::Context ctx(1);
  for (auto _ : state) {
    gemm::BGemm(lhs.data(), kM, packed, kK, out.data(), kN, ctx);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["GMAC/s"] = benchmark::Counter(
      static_cast<double>(kM) * kN * kK * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BGemm);

void BM_FloatGemm(benchmark::State& state) {
  Rng rng(2);
  std::vector<float> lhs(static_cast<std::size_t>(kM) * kK);
  std::vector<float> rhs(static_cast<std::size_t>(kN) * kK);
  for (auto& v : lhs) v = rng.Uniform();
  for (auto& v : rhs) v = rng.Uniform();
  gemm::PackedFloatMatrix packed(rhs.data(), kN, kK);
  std::vector<float> out(static_cast<std::size_t>(kM) * kN);
  gemm::Context ctx(1);
  for (auto _ : state) {
    gemm::FloatGemm(lhs.data(), kM, packed, out.data(), kN, ctx);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["GMAC/s"] = benchmark::Counter(
      static_cast<double>(kM) * kN * kK * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FloatGemm);

void BM_Int8Gemm(benchmark::State& state) {
  Rng rng(3);
  std::vector<std::int8_t> lhs(static_cast<std::size_t>(kM) * kK);
  std::vector<std::int8_t> rhs(static_cast<std::size_t>(kN) * kK);
  for (auto& v : lhs) v = rng.Int8();
  for (auto& v : rhs) v = rng.Int8();
  gemm::PackedInt8Matrix packed(rhs.data(), kN, kK);
  std::vector<std::int32_t> out(static_cast<std::size_t>(kM) * kN);
  gemm::Context ctx(1);
  for (auto _ : state) {
    gemm::Int8Gemm(lhs.data(), kM, packed, out.data(), kN, ctx);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["GMAC/s"] = benchmark::Counter(
      static_cast<double>(kM) * kN * kK * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Int8Gemm);

void BM_LceQuantize(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(4);
  Tensor in(DataType::kFloat32, Shape{1, n, n, 256});
  FillUniform(in, rng);
  Tensor out(DataType::kBitpacked, in.shape());
  for (auto _ : state) {
    LceQuantize(in, out);
    benchmark::DoNotOptimize(out.raw_data());
  }
  state.SetBytesProcessed(state.iterations() * in.byte_size());
}
BENCHMARK(BM_LceQuantize)->Arg(14)->Arg(56);

void BM_LceBMaxPool(benchmark::State& state) {
  Rng rng(5);
  Tensor in(DataType::kBitpacked, Shape{1, 56, 56, 256});
  FillBitpacked(in, rng);
  Pool2DGeometry geo;
  geo.in_h = geo.in_w = 56;
  geo.channels = 256;
  geo.filter_h = geo.filter_w = 2;
  geo.stride_h = geo.stride_w = 2;
  geo.padding = Padding::kValid;
  Tensor out(DataType::kBitpacked, Shape{1, 28, 28, 256});
  for (auto _ : state) {
    LceBMaxPool2d(in, geo, out);
    benchmark::DoNotOptimize(out.raw_data());
  }
}
BENCHMARK(BM_LceBMaxPool);

void BM_BConv2D(benchmark::State& state) {
  const bool bitpacked_out = state.range(0) != 0;
  Conv2DGeometry g;
  g.in_h = g.in_w = 14;
  g.in_c = g.out_c = 256;
  g.filter_h = g.filter_w = 3;
  g.padding = Padding::kSameOne;
  Rng rng(6);
  Tensor in_f(DataType::kFloat32, Shape{1, 14, 14, 256});
  FillSigns(in_f, rng);
  Tensor in(DataType::kBitpacked, in_f.shape());
  BitpackTensor(in_f, in);
  std::vector<float> w(static_cast<std::size_t>(256) * 9 * 256);
  for (auto& v : w) v = rng.Sign();
  BConv2DAttrs attrs;
  attrs.geo = g;
  attrs.multiplier.assign(256, 0.02f);
  attrs.bias.assign(256, 0.1f);
  attrs.output_type =
      bitpacked_out ? BConvOutputType::kBitpacked : BConvOutputType::kFloat;
  BConv2D op(w.data(), attrs);
  Tensor out(bitpacked_out ? DataType::kBitpacked : DataType::kFloat32,
             Shape{1, 14, 14, 256});
  gemm::Context ctx(1);
  for (auto _ : state) {
    op.Run(in, out, ctx);
    benchmark::DoNotOptimize(out.raw_data());
  }
  state.counters["GMAC/s"] = benchmark::Counter(
      static_cast<double>(g.macs()) * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BConv2D)->Arg(0)->Arg(1);

// Execution-mode comparison on a QuickNet-S shape (28x28x128, 3x3).
// Mode 0 = unfused im2col + BGEMM, 1 = unfused indirect (scalar gather),
// 2 = fused tiled indirect (the production default). The second argument is
// the thread count, showing the fused pipeline's row-tile sharding.
void BM_BConv2DExecMode(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  Conv2DGeometry g;
  g.in_h = g.in_w = 28;
  g.in_c = g.out_c = 128;
  g.filter_h = g.filter_w = 3;
  g.padding = Padding::kSameOne;
  Rng rng(7);
  Tensor in_f(DataType::kFloat32, Shape{1, 28, 28, 128});
  FillSigns(in_f, rng);
  Tensor in(DataType::kBitpacked, in_f.shape());
  BitpackTensor(in_f, in);
  std::vector<float> w(static_cast<std::size_t>(128) * 9 * 128);
  for (auto& v : w) v = rng.Sign();
  BConv2DAttrs attrs;
  attrs.geo = g;
  attrs.output_type = BConvOutputType::kFloat;
  attrs.use_indirect_bgemm = mode != 0;
  attrs.force_unfused = mode != 2;
  BConv2D op(w.data(), attrs);
  Tensor out(DataType::kFloat32, Shape{1, 28, 28, 128});
  gemm::Context ctx(threads);
  for (auto _ : state) {
    op.Run(in, out, ctx);
    benchmark::DoNotOptimize(out.raw_data());
  }
  state.counters["GMAC/s"] = benchmark::Counter(
      static_cast<double>(g.macs()) * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BConv2DExecMode)
    ->ArgNames({"mode", "threads"})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({2, 4});

}  // namespace

BENCHMARK_MAIN();
