// Extension experiment: Figure 2 generalized to whole models. The same
// ResNet18 architecture in three precisions -- float32, int8 (post-training
// quantized, the TFLite-style baseline) and binarized (Bi-Real-style with
// shortcuts) -- measured end to end.
//
// Expected shape, following the paper's conv-level results: binary < int8 <
// float in latency, with the binarized model's gap limited by its fp first
// layer and glue (the Amdahl effect QuickNet was designed to attack).
#include <cstdio>

#include "bench_common.h"
#include "converter/ptq.h"
#include "models/macs.h"
#include "models/zoo.h"

namespace {

using namespace lce;
using namespace lce::bench;

struct Row {
  const char* name;
  double ms;
  std::size_t bytes;
};

Row Measure(const char* name, Graph& g, gemm::KernelProfile profile) {
  InterpreterOptions opts;
  opts.kernel_profile = profile;
  Interpreter interp(g, opts);
  LCE_CHECK(interp.Prepare().ok());
  Rng rng(1);
  Tensor in = interp.input(0);
  for (std::int64_t i = 0; i < in.num_elements(); ++i) {
    in.data<float>()[i] = rng.Uniform();
  }
  const double ms =
      1e3 * profiling::MeasureMedianSeconds([&] { interp.Invoke(); }, 1, 7,
                                            15, 0.2);
  return {name, ms, g.ConstantBytes()};
}

}  // namespace

int main(int argc, char** argv) {
  const auto profile = ParseProfile(argc, argv);
  std::printf("=== Extension: ResNet18 across precisions (224x224, "
              "profile=%s) ===\n\n",
              ProfileName(profile));

  Graph float_graph = BuildFloatResNet18(224);
  const Row f = Measure("float32", float_graph, profile);

  Graph int8_graph = BuildFloatResNet18(224);
  PtqStats ptq_stats;
  LCE_CHECK(QuantizeModelInt8(int8_graph, {}, &ptq_stats).ok());
  const Row q = Measure("int8 (PTQ)", int8_graph, profile);

  Graph binary_graph = BuildBinarizedResNet18(ShortcutMode::kAllBlocks, 224);
  LCE_CHECK(Convert(binary_graph).ok());
  const Row b = Measure("binary (Bi-Real style)", binary_graph, profile);

  std::printf("%-24s %12s %10s %12s\n", "Model", "latency-ms", "speedup",
              "weights-MB");
  for (const Row& r : {f, q, b}) {
    std::printf("%-24s %12.1f %9.1fx %12.2f\n", r.name, r.ms, f.ms / r.ms,
                r.bytes / (1024.0 * 1024.0));
  }
  std::printf("\n(int8 model: %d convolutions quantized, %d quantize pairs "
              "cancelled)\n",
              ptq_stats.convs_quantized, ptq_stats.quantize_pairs_cancelled);
  std::printf(
      "Shape: binary < int8 < float latency; the end-to-end binary speedup\n"
      "is smaller than the conv-level Figure 2 factors because the fp first\n"
      "layer and glue do not binarize (cf. Figure 5 / Table 4).\n");
  return 0;
}
