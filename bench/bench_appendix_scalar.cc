// Appendix (Figures 11/12, Table 5): the conv-level experiments re-run on
// the portable scalar kernels -- this repo's "second benchmark device",
// standing in for the paper's Raspberry Pi 4B vs Pixel 1 comparison. The
// other appendix figures (13/14/15) are the model-level binaries run with
// --profile=scalar.
#include <cstdio>
#include <limits>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace lce;
  using namespace lce::bench;
  const std::int64_t cap = HasFlag(argc, argv, "--full")
                               ? std::numeric_limits<std::int64_t>::max()
                               : 200'000'000;  // scalar kernels are slower
  gemm::Context ctx(1, gemm::KernelProfile::kScalar);

  std::printf("=== Appendix: scalar-kernel device (Figures 11/12, Table 5) "
              "===\n\n");

  // Figure 11: the four ResNet18 convolutions.
  std::printf("%-18s %12s %12s %12s %9s %9s\n", "Convolution", "float (ms)",
              "int8 (ms)", "binary (ms)", "bin/f32", "bin/i8");
  for (const auto& [name, dims] : ResNet18Convs()) {
    ConvBench f = MakeFloatConv(dims, ctx);
    ConvBench q = MakeInt8Conv(dims, ctx);
    ConvBench b = MakeBinaryConv(dims, ctx);
    const double tf = profiling::MeasureMedianSeconds(f.run, 1, 2, 5, 0.02);
    const double tq = profiling::MeasureMedianSeconds(q.run, 1, 2, 5, 0.02);
    const double tb = profiling::MeasureMedianSeconds(b.run, 1, 3, 10, 0.02);
    std::printf("%-18s %12.3f %12.3f %12.3f %8.1fx %8.1fx\n", name.c_str(),
                tf * 1e3, tq * 1e3, tb * 1e3, tf / tb, tq / tb);
  }

  // Table 5: speedup statistics over the sweep.
  const auto rows = RunConvSweep(ctx, cap);
  std::vector<double> vs_float, vs_int8, float_w, int8_w;
  for (const auto& r : rows) {
    vs_float.push_back(r.float_ms / r.binary_ms);
    vs_int8.push_back(r.int8_ms / r.binary_ms);
    float_w.push_back(r.float_ms);
    int8_w.push_back(r.int8_ms);
  }
  std::printf("\nTable 5 (%zu convolutions):\n", rows.size());
  std::printf("%-10s %8s %15s %18s\n", "Precision", "Mean", "Weighted mean",
              "Range");
  const auto print = [](const char* name, const std::vector<double>& s,
                        const std::vector<double>& w) {
    const auto mm = profiling::Range(s);
    std::printf("%-10s %7.1fx %14.1fx %10.1f-%.1fx\n", name,
                profiling::Mean(s), profiling::WeightedMean(s, w), mm.min,
                mm.max);
  };
  print("1 vs 32", vs_float, float_w);
  print("1 vs 8", vs_int8, int8_w);
  std::printf(
      "\nPaper (RPi 4B): 1 vs 32 mean 17.5x weighted 16.0x range 8.8-23.0x;\n"
      "                1 vs 8  mean  8.3x weighted  8.5x range 5.1-9.6x.\n"
      "Shape: relative orderings as on the primary device; the 1-vs-8 stats\n"
      "land on the paper's RPi numbers almost exactly. 1-vs-32 is inflated\n"
      "here because the scalar float kernel lacks SIMD entirely, whereas the\n"
      "RPi's float path still uses NEON -- the binary kernel keeps hardware\n"
      "popcount in both scalar profiles, as a real deployment would.\n");
  return 0;
}
